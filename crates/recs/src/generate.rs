//! Recommendation generation: runs the applicable actions over a dataframe,
//! applying the PRUNE optimization inside each action and the ASYNC
//! cost-based schedule across actions (paper §8.2).
//!
//! Every action runs under the fault model of [`crate::fault`]: generation,
//! scoring, and processing are panic-isolated; each action gets a wall-clock
//! budget derived from its cost estimate (`LuxConfig::action_budget` scaled
//! by `CostModel::time_budget`) with cooperative checks between steps and —
//! on the owned/streaming path — a hard cutoff that abandons hung workers;
//! and a per-action circuit breaker skips actions that keep failing, with a
//! half-open re-probe after a cooldown of fresh frames. One misbehaving
//! action can therefore never take down a recommendation pass: every healthy
//! action's results are still served, and the per-action health ledger in
//! [`RunReport`] says what happened to the rest.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lux_dataframe::prelude::*;
use lux_engine::governor::{drain_sink, event_sink, BudgetHandle, DegradeLevel, EventSink};
use lux_engine::lock_recover;
use lux_engine::trace::{names as metric, MetricsRegistry, SpanId, TraceCollector};
#[cfg(test)]
use lux_engine::LuxConfig;
use lux_engine::{CostModel, FrameMeta};
use lux_vis::{Channel, Vis, VisList, VisSpec};

use crate::action::{Action, ActionContext, ActionRegistry, ActionResult, Candidate};
use crate::fault::{
    isolate, ActionError, ActionHealth, ActionStatus, BreakerDecision, CircuitBreaker, Deadline,
    RunReport,
};

/// Trace attachment for one executing action: the shared pass collector plus
/// the action's own span, under which the executor records `generate` /
/// `score` / `process` phase spans and the PRUNE/deadline decision tags.
/// Cloneable so detached workers can carry it across threads.
#[derive(Clone)]
pub struct TraceCtx {
    pub collector: Arc<TraceCollector>,
    pub span: SpanId,
}

impl TraceCtx {
    pub fn new(collector: Arc<TraceCollector>, span: SpanId) -> TraceCtx {
        TraceCtx { collector, span }
    }

    fn child(&self, name: &str) -> SpanId {
        self.collector.begin(Some(self.span), name)
    }

    fn tag(&self, key: &str, value: impl Into<String>) {
        self.collector.tag(self.span, key, value);
    }
}

/// Estimate `(rows, groups)` for costing one spec against frame metadata.
/// "Groups" is the output cardinality of the primary relational operation
/// (Table 2): selections materialize no groups, binned ops produce one
/// group per bin, and group-bys produce one group per key combination.
fn estimate_spec(spec: &VisSpec, meta: &FrameMeta, num_rows: usize) -> (usize, usize) {
    use lux_engine::OpClass;
    let x_card = spec
        .channel(Channel::X)
        .and_then(|e| meta.column(&e.attribute))
        .map(|c| c.cardinality.min(num_rows))
        .unwrap_or(1);
    let color_card = spec
        .channel(Channel::Color)
        .and_then(|e| meta.column(&e.attribute))
        .map(|c| c.cardinality.min(num_rows))
        .unwrap_or(1);
    let bins = |e: Option<&lux_vis::Encoding>| e.and_then(|e| e.bin).unwrap_or(10);
    let groups = match spec.op_class() {
        OpClass::Selection2 | OpClass::Selection3 => 0,
        OpClass::GroupAgg => x_card,
        OpClass::GroupAgg2D => x_card.saturating_mul(color_card).min(num_rows),
        OpClass::BinCount => bins(spec.channel(Channel::X)),
        OpClass::BinCount2D | OpClass::BinCount2DGroup => {
            bins(spec.channel(Channel::X)) * bins(spec.channel(Channel::Y))
        }
    };
    (num_rows, groups)
}

/// Cost-model estimate for a whole action (sum over its candidates).
fn estimate_action(
    candidates: &[Candidate],
    meta: &FrameMeta,
    num_rows: usize,
    model: &CostModel,
) -> f64 {
    model.action_cost(candidates.iter().map(|c| {
        let rows = c.frame.as_ref().map_or(num_rows, |f| f.num_rows());
        let (r, g) = estimate_spec(&c.spec, meta, rows);
        (c.spec.op_class(), r, g)
    }))
}

/// Run `action.generate` under panic isolation, folding generation errors
/// into the [`ActionError`] taxonomy.
fn generate_isolated(
    action: &dyn Action,
    ctx: &ActionContext<'_>,
) -> std::result::Result<Vec<Candidate>, ActionError> {
    match isolate(action.name(), || action.generate(ctx)) {
        Ok(Ok(candidates)) => Ok(candidates),
        Ok(Err(e)) => Err(ActionError::Generation(e.to_string())),
        Err(panic) => Err(panic),
    }
}

/// Score, rank, and process pre-generated candidates under the fault model:
/// panic isolation around every call into the action, a cooperative deadline
/// between scoring/processing steps, and the degraded path (sample-backed
/// partial results, `degraded: true`) once the deadline expires.
fn execute_prepared(
    action: &dyn Action,
    ctx: &ActionContext<'_>,
    sample: Option<&DataFrame>,
    model: &CostModel,
    mut candidates: Vec<Candidate>,
    trace: Option<&TraceCtx>,
    governor: Option<&Arc<BudgetHandle>>,
    sink: Option<&EventSink>,
) -> std::result::Result<Option<ActionResult>, ActionError> {
    let start = Instant::now();
    if candidates.is_empty() {
        return Ok(None);
    }
    let mut opts = ctx.process_options();
    opts.governor = governor.cloned();
    // SQL backend: count transient-error retries so they can be tagged
    // onto this action's span (`sql.retries`) after processing.
    let sql_attempts = ctx
        .config
        .sql_backend
        .then(|| Arc::new(std::sync::atomic::AtomicU64::new(0)));
    opts.sql_attempts = sql_attempts.clone();
    // Degradation events go to the caller's sink when one is attached (the
    // parallel-actions path replays them in schedule order), otherwise live
    // onto the governor. Returns how many events were emitted.
    let emit = |events: Vec<lux_engine::GovernorEvent>| -> usize {
        let n = events.len();
        match (sink, governor) {
            (Some(s), _) => lock_recover(s).extend(events),
            (None, Some(g)) => g.absorb(events),
            _ => {}
        }
        n
    };
    // Governor: the candidate search space is the first allocation-heavy
    // surface of an action — cap it before any scoring/processing happens.
    let mut governor_notes: Vec<String> = Vec::new();
    // The governor's budget may be tighter than the config's: under
    // admission pressure the shed ladder hands the pass a shrunk candidate
    // cap (DESIGN.md §10).
    let max_candidates = governor
        .map(|g| g.budget().max_candidates)
        .unwrap_or(ctx.config.budget.max_candidates);
    if candidates.len() > max_candidates {
        let dropped = candidates.len() - max_candidates;
        candidates.truncate(max_candidates);
        let note = format!("candidate search space capped at {max_candidates} ({dropped} dropped)");
        if governor.is_some() {
            emit(vec![lux_engine::GovernorEvent {
                stage: format!("action:{}", action.name()),
                level: DegradeLevel::CappedCardinality,
                detail: note.clone(),
            }]);
        }
        governor_notes.push(note);
    }
    // Score/process degradations attributed to THIS action (counted from
    // its own per-candidate sinks, immune to concurrent actions' events).
    let mut degrade_events = 0usize;
    let governed = governor.is_some();
    let estimated_cost = estimate_action(&candidates, ctx.meta, ctx.df.num_rows(), model);
    let k = ctx.config.top_k;
    let total = candidates.len();
    if let Some(t) = trace {
        t.tag("candidates", total.to_string());
        t.tag("cost.estimated", format!("{estimated_cost:.0}"));
    }

    // The budget is proportional to how expensive the cost model predicts
    // this action to be — cheap actions get the base budget, heavyweight
    // ones up to the hard-cutoff multiple of it.
    let deadline = match ctx.config.action_budget {
        Some(base) => Deadline::after(model.time_budget(estimated_cost, base)),
        None => Deadline::none(),
    };

    // PRUNE gate: approximate only when the cost model predicts a win and a
    // genuinely smaller sample exists (paper: "apply prune for any action
    // where the number of visualizations exceeds k", subject to the model).
    // The sample is bound in the same match that decides to prune, so the
    // "prune without a sample" state is unrepresentable.
    let rep_class = candidates[0].spec.op_class();
    let (rep_rows, rep_groups) = estimate_spec(&candidates[0].spec, ctx.meta, ctx.df.num_rows());
    // Admission shed ladder: a pass admitted under pressure carries a
    // `Sampled` degradation floor — approximate scoring is then forced
    // whenever a sample exists, regardless of the cost model's verdict.
    let force_sampled = governor.is_some_and(|g| g.degrade_floor() >= DegradeLevel::Sampled);
    let prune_sample: Option<&DataFrame> = match sample {
        Some(s) if force_sampled => Some(s),
        Some(s)
            if ctx.config.prune
                && total > k
                && model.prune_worthwhile(
                    total,
                    k,
                    rep_class,
                    rep_rows,
                    s.num_rows(),
                    rep_groups,
                ) =>
        {
            Some(s)
        }
        _ => None,
    };
    // PRUNE observability: when approximation was a live question (PRUNE on
    // and a sample available), record whether the cost-model gate engaged.
    if (ctx.config.prune || force_sampled) && sample.is_some() {
        MetricsRegistry::global().incr(if prune_sample.is_some() {
            metric::PRUNE_ENGAGED
        } else {
            metric::PRUNE_SKIPPED
        });
    }
    if let Some(t) = trace {
        t.tag(
            "prune",
            match (
                force_sampled && prune_sample.is_some(),
                ctx.config.prune,
                prune_sample.is_some(),
            ) {
                (true, _, _) => "forced",
                (false, true, true) => "engaged",
                (false, true, false) => "skipped",
                (false, false, _) => "off",
            },
        );
        if deadline.is_bounded() {
            t.tag(
                "deadline.budget_ms",
                format!("{:.1}", deadline.budget().as_secs_f64() * 1e3),
            );
        }
    }

    // First pass: score every candidate (on the sample when PRUNE applies).
    // With `threads > 1` candidates score as pool tasks into per-index
    // slots; the slots are folded in candidate order, stopping at the first
    // deadline expiry, so a run that never hits its deadline produces
    // byte-identical output at every thread count (and `threads = 1` is the
    // old sequential loop exactly).
    let par = ctx.config.effective_threads();
    let score_span = trace.map(|t| t.child("score"));
    if let (Some(t), Some(id)) = (trace, score_span) {
        t.collector.tag(id, "par", par.to_string());
    }
    enum ScoreOutcome {
        Scored(Candidate, f64, bool),
        Expired,
        Panicked(ActionError),
    }
    let outcomes = lux_engine::parallel_map(par, candidates, |_, cand| {
        if deadline.expired() {
            return (ScoreOutcome::Expired, None);
        }
        // Per-candidate event sink: degradations recorded while scoring
        // buffer here and are replayed in candidate order by the fold below.
        let csink = governed.then(event_sink);
        let copts = match &csink {
            Some(s) => {
                let mut c = opts.clone();
                c.event_sink = Some(s.clone());
                c
            }
            None => opts.clone(),
        };
        // Candidates pinned to their own frame (history/structure actions)
        // are scored on that frame; others use the sample when pruning.
        let (frame, approx): (&DataFrame, bool) = match (&cand.frame, prune_sample) {
            (Some(f), _) => (f, false),
            (None, Some(s)) => (s, true),
            (None, None) => (ctx.df, false),
        };
        let outcome = match isolate(action.name(), || action.score(&cand.spec, frame, &copts)) {
            Ok(s) => ScoreOutcome::Scored(cand, s, approx),
            Err(e) => ScoreOutcome::Panicked(e),
        };
        (outcome, csink)
    });
    let mut scored: Vec<(Candidate, f64, bool)> = Vec::with_capacity(total);
    let mut degraded_reason: Option<String> = None;
    for (outcome, csink) in outcomes {
        // Replay this candidate's events before settling its outcome — the
        // order a sequential run would have recorded them in.
        if let Some(s) = &csink {
            degrade_events += emit(drain_sink(s));
        }
        match outcome {
            ScoreOutcome::Scored(cand, score, approx) => scored.push((cand, score, approx)),
            ScoreOutcome::Expired => {
                degraded_reason = Some(format!(
                    "budget {:?} exhausted after scoring {}/{} candidates",
                    deadline.budget(),
                    scored.len(),
                    total
                ));
                break;
            }
            ScoreOutcome::Panicked(e) => {
                if let (Some(t), Some(id)) = (trace, score_span) {
                    t.collector.tag(id, "panicked", "true");
                    t.collector.end(id);
                }
                return Err(e);
            }
        }
    }
    if let (Some(t), Some(id)) = (trace, score_span) {
        t.collector
            .tag(id, "scored", format!("{}/{total}", scored.len()));
        t.collector
            .tag(id, "approximate", prune_sample.is_some().to_string());
        t.collector.end(id);
    }
    if scored.is_empty() {
        // Deadline hit before anything was scored: nothing servable.
        return Err(ActionError::TimedOut {
            budget: deadline.budget(),
            completed: 0,
            total,
        });
    }
    // NaN scores sort last deterministically (an action whose statistic
    // degenerates must never float to the top of the ranking).
    scored.sort_by(|a, b| lux_engine::cmp_score_desc(a.1, b.1));
    scored.truncate(k);

    // Second pass: recompute approximate scores exactly and process the
    // top-k on the full frame — until the deadline expires, after which the
    // remaining survivors are served degraded: approximate score kept,
    // processed against the (cheap) sample so there is still data to draw.
    // Like scoring, survivors process as pool tasks into per-index slots;
    // each task re-checks the deadline itself, so without deadline pressure
    // every thread count takes the exact path on every survivor.
    let process_span = trace.map(|t| t.child("process"));
    if let (Some(t), Some(id)) = (trace, process_span) {
        t.collector.tag(id, "par", par.to_string());
    }
    enum ProcOutcome {
        Exact(Result<Vis>),
        Degraded(Vis),
        Panicked(ActionError),
    }
    let already_degraded = degraded_reason.is_some();
    let proc_outcomes = lux_engine::parallel_map(par, scored, |_, (cand, score, approx)| {
        let csink = governed.then(event_sink);
        let copts = match &csink {
            Some(s) => {
                let mut c = opts.clone();
                c.event_sink = Some(s.clone());
                c
            }
            None => opts.clone(),
        };
        let Candidate {
            spec,
            frame: pinned,
        } = cand;
        let outcome = if !already_degraded && !deadline.expired() {
            let frame: &DataFrame = pinned.as_deref().unwrap_or(ctx.df);
            match isolate(action.name(), || -> Result<Vis> {
                let exact = if approx {
                    action.score(&spec, frame, &copts)
                } else {
                    score
                };
                let mut vis = Vis::new(spec);
                vis.score = exact;
                vis.approximate = false;
                vis.process(frame, &copts)?;
                Ok(vis)
            }) {
                Ok(r) => ProcOutcome::Exact(r),
                Err(e) => ProcOutcome::Panicked(e),
            }
        } else {
            // Degraded path: best-effort processing against the pinned
            // frame or the sample; score-only (no data) when neither works.
            let mut vis = Vis::new(spec);
            vis.score = score;
            vis.approximate = true;
            if let Some(frame) = pinned.as_deref().or(sample) {
                let _ = isolate(action.name(), || vis.process(frame, &copts));
            }
            ProcOutcome::Degraded(vis)
        };
        (outcome, csink)
    });
    let mut visses: Vec<Vis> = Vec::with_capacity(proc_outcomes.len());
    let mut last_processing_error: Option<String> = None;
    let mut expired_during_processing = false;
    for (outcome, csink) in proc_outcomes {
        if let Some(s) = &csink {
            degrade_events += emit(drain_sink(s));
        }
        match outcome {
            ProcOutcome::Exact(Ok(vis)) => visses.push(vis),
            // fail-safe: drop the broken vis, keep the rest
            ProcOutcome::Exact(Err(e)) => last_processing_error = Some(e.to_string()),
            ProcOutcome::Degraded(vis) => {
                if !already_degraded {
                    expired_during_processing = true;
                }
                visses.push(vis);
            }
            ProcOutcome::Panicked(e) => {
                if let (Some(t), Some(id)) = (trace, process_span) {
                    t.collector.tag(id, "panicked", "true");
                    t.collector.end(id);
                }
                return Err(e);
            }
        }
    }
    if expired_during_processing && degraded_reason.is_none() {
        degraded_reason = Some(format!(
            "budget {:?} exhausted during exact processing; remaining results are sample-approximated",
            deadline.budget()
        ));
    }
    if let (Some(t), Some(id)) = (trace, process_span) {
        t.collector.tag(id, "processed", visses.len().to_string());
        t.collector
            .tag(id, "degraded", degraded_reason.is_some().to_string());
        t.collector.end(id);
    }
    if visses.is_empty() {
        return Err(ActionError::Processing(
            last_processing_error
                .unwrap_or_else(|| "every candidate failed processing".to_string()),
        ));
    }
    let mut vislist = VisList::new(visses);
    vislist.rank();

    // Governor degradations during scoring/processing (group caps, shrunk
    // scans, ...) surface on the result even though the deadline never
    // fired: the tab is marked degraded with the governor's reasons.
    if governed {
        if degrade_events > 0 {
            governor_notes.push(format!(
                "resource governor degraded {degrade_events} processing step(s)"
            ));
        }
        if let Some(t) = trace {
            t.tag("governor.events", degrade_events.to_string());
        }
    }
    // Surface transient SQL retries on the action span (satellite: the
    // retry-with-backoff wrapper counts attempts into this cell).
    if let (Some(t), Some(attempts)) = (trace, &sql_attempts) {
        let n = attempts.load(std::sync::atomic::Ordering::Relaxed);
        if n > 0 {
            t.tag("sql.retries", n.to_string());
        }
    }
    let degraded = degraded_reason.is_some() || !governor_notes.is_empty();
    let degraded_reason = match (degraded_reason, governor_notes.is_empty()) {
        (Some(r), true) => Some(r),
        (Some(r), false) => Some(format!("{r}; {}", governor_notes.join("; "))),
        (None, false) => Some(governor_notes.join("; ")),
        (None, true) => None,
    };

    Ok(Some(ActionResult {
        action: action.name().to_string(),
        class: action.class(),
        vislist,
        estimated_cost,
        elapsed: start.elapsed().as_secs_f64(),
        degraded,
        degraded_reason,
    }))
}

/// Execute one action end-to-end under the fault model: generate, score
/// (approximately when PRUNE applies), rank, keep top-k, and process the
/// survivors exactly. `Ok(None)` means the action generated no candidates
/// (an invisible empty tab, not a fault).
pub fn execute_action_guarded(
    action: &dyn Action,
    ctx: &ActionContext<'_>,
    sample: Option<&DataFrame>,
    model: &CostModel,
) -> std::result::Result<Option<ActionResult>, ActionError> {
    execute_action_traced(action, ctx, sample, model, None)
}

/// [`execute_action_guarded`] with an optional trace attachment: records a
/// `generate` phase span plus the score/process spans and decision tags of
/// [`execute_prepared`] under the action's span.
pub fn execute_action_traced(
    action: &dyn Action,
    ctx: &ActionContext<'_>,
    sample: Option<&DataFrame>,
    model: &CostModel,
    trace: Option<&TraceCtx>,
) -> std::result::Result<Option<ActionResult>, ActionError> {
    execute_action_governed(action, ctx, sample, model, trace, None)
}

/// [`execute_action_traced`] with an optional resource governor: candidate
/// enumeration is capped at `config.budget.max_candidates`, processing runs
/// with the governor attached (group-cardinality caps, scan shrinking), and
/// any degradation surfaces on the result and the trace.
pub fn execute_action_governed(
    action: &dyn Action,
    ctx: &ActionContext<'_>,
    sample: Option<&DataFrame>,
    model: &CostModel,
    trace: Option<&TraceCtx>,
    governor: Option<&Arc<BudgetHandle>>,
) -> std::result::Result<Option<ActionResult>, ActionError> {
    let candidates = match trace {
        Some(t) => {
            let gen_span = t.child("generate");
            let generated = generate_isolated(action, ctx);
            match &generated {
                Ok(c) => t.collector.tag(gen_span, "candidates", c.len().to_string()),
                Err(_) => t.collector.tag(gen_span, "failed", "true"),
            }
            t.collector.end(gen_span);
            generated?
        }
        None => generate_isolated(action, ctx)?,
    };
    execute_prepared(
        action, ctx, sample, model, candidates, trace, governor, None,
    )
}

/// Fault-blind convenience wrapper around [`execute_action_guarded`]:
/// failures of any kind collapse to `None`.
pub fn execute_action(
    action: &dyn Action,
    ctx: &ActionContext<'_>,
    sample: Option<&DataFrame>,
    model: &CostModel,
) -> Option<ActionResult> {
    execute_action_guarded(action, ctx, sample, model)
        .ok()
        .flatten()
}

/// Derive the health status for a delivered result.
fn delivery_status(result: &ActionResult) -> ActionStatus {
    match &result.degraded_reason {
        Some(reason) if result.degraded => ActionStatus::Degraded(reason.clone()),
        _ if result.degraded => ActionStatus::Degraded("partial results".to_string()),
        _ => ActionStatus::Ok,
    }
}

/// Record the always-on metrics and (when attached) the closing span tags
/// for one settled action. Shared by the borrowing and streaming paths so
/// counters agree regardless of execution mode. `tripped` is whether the
/// failure left the circuit breaker open.
fn settle_observability(
    outcome: &std::result::Result<Option<ActionResult>, ActionError>,
    tripped: bool,
    span: Option<(&TraceCollector, SpanId)>,
) {
    let metrics = MetricsRegistry::global();
    match outcome {
        Ok(Some(result)) => {
            metrics.incr(if result.degraded {
                metric::ACTIONS_DEGRADED
            } else {
                metric::ACTIONS_OK
            });
            metrics.observe(
                metric::ACTION_LATENCY,
                Duration::from_secs_f64(result.elapsed),
            );
            if let Some((collector, id)) = span {
                collector.tag(
                    id,
                    "status",
                    if result.degraded { "degraded" } else { "ok" },
                );
                collector.tag(id, "cost.actual_ms", format!("{:.2}", result.elapsed * 1e3));
                if let Some(reason) = &result.degraded_reason {
                    collector.tag(id, "degraded.reason", reason.clone());
                }
                collector.end(id);
            }
        }
        Ok(None) => {
            metrics.incr(metric::ACTIONS_OK);
            if let Some((collector, id)) = span {
                collector.tag(id, "status", "empty");
                collector.end(id);
            }
        }
        Err(err) => {
            metrics.incr(metric::ACTIONS_FAILED);
            if tripped {
                metrics.incr(metric::BREAKER_TRIPS);
            }
            if let Some((collector, id)) = span {
                collector.tag(id, "status", "failed");
                collector.tag(id, "error", err.to_string());
                collector.end(id);
            }
        }
    }
}

/// Fold one guarded-execution outcome into the report, the breaker, the
/// metrics registry/trace, and the caller's streaming callback.
fn absorb_outcome(
    name: &str,
    outcome: std::result::Result<Option<ActionResult>, ActionError>,
    report: &mut RunReport,
    breaker: &CircuitBreaker,
    threshold: u32,
    on_result: &mut Option<&mut dyn FnMut(&ActionResult)>,
    span: Option<(&TraceCollector, SpanId)>,
) {
    let tripped = match &outcome {
        // Degraded still counts as delivery for the breaker: the action
        // is healthy, the budget was just too tight for exact results.
        Ok(_) => {
            breaker.record_success(name);
            false
        }
        Err(err) => breaker.record_failure(name, &err.to_string(), threshold),
    };
    settle_observability(&outcome, tripped, span);
    match outcome {
        Ok(Some(result)) => {
            report
                .health
                .push(ActionHealth::new(name, delivery_status(&result)));
            if let Some(cb) = on_result.as_deref_mut() {
                cb(&result);
            }
            report.results.push(result);
        }
        // No candidates: not a fault, and (as before the fault layer) not a
        // visible tab either — no health entry.
        Ok(None) => {}
        Err(err) => {
            report.health.push(ActionHealth::new(
                name,
                ActionStatus::Failed(err.to_string()),
            ));
        }
    }
}

/// Run every applicable action under the fault model and return both the
/// healthy results and the per-action health ledger.
///
/// With `config.async` the actions run on scoped worker threads scheduled
/// cheapest-first and `on_result` fires as each completes (streaming, as in
/// the paper); otherwise they run sequentially cheapest-first. Results are
/// ordered by estimated cost. Note the scoped (borrowing) path has panic
/// isolation and cooperative deadlines but no hard cutoff — an action that
/// blocks inside one call can delay the pass; the owned path
/// ([`run_actions_streaming`]) additionally abandons hung workers.
pub fn run_actions_report(
    registry: &ActionRegistry,
    ctx: &ActionContext<'_>,
    sample: Option<&DataFrame>,
    on_result: Option<&mut dyn FnMut(&ActionResult)>,
) -> RunReport {
    run_actions_report_traced(registry, ctx, sample, on_result, None)
}

/// [`run_actions_report`] with an optional trace attachment: every action
/// gets an `action:<name>` span under the given parent — begun when the
/// action is queued for generation, ended when its outcome settles — that
/// carries the generate/score/process phase spans, the PRUNE/deadline
/// decision tags, and the cheapest-first `sched.order` index.
pub fn run_actions_report_traced(
    registry: &ActionRegistry,
    ctx: &ActionContext<'_>,
    sample: Option<&DataFrame>,
    on_result: Option<&mut dyn FnMut(&ActionResult)>,
    trace: Option<(&Arc<TraceCollector>, SpanId)>,
) -> RunReport {
    run_actions_report_governed(registry, ctx, sample, on_result, trace, None)
}

/// [`run_actions_report_traced`] with an optional per-pass resource
/// governor shared by every action in the pass (see
/// `lux_engine::governor`): allocation-heavy steps degrade against the
/// shared budget instead of exhausting memory.
pub fn run_actions_report_governed(
    registry: &ActionRegistry,
    ctx: &ActionContext<'_>,
    sample: Option<&DataFrame>,
    mut on_result: Option<&mut dyn FnMut(&ActionResult)>,
    trace: Option<(&Arc<TraceCollector>, SpanId)>,
    governor: Option<&Arc<BudgetHandle>>,
) -> RunReport {
    let model = CostModel::default();
    let breaker = registry.breaker();
    breaker.begin_frame();
    let threshold = ctx.config.breaker_threshold;
    let mut report = RunReport::default();
    let span_ref = |s: Option<SpanId>| {
        trace.and_then(|(c, _)| s.map(|id| (c.as_ref() as &TraceCollector, id)))
    };

    // Breaker gate, then one isolated generation pass per action: the
    // candidates drive both the cheapest-first schedule and execution (so
    // generation runs exactly once per action per pass).
    let mut prepared: Vec<(Arc<dyn Action>, Vec<Candidate>, f64, Option<SpanId>)> = Vec::new();
    for action in registry.applicable(ctx) {
        match breaker.decision(action.name(), ctx.config.breaker_cooldown) {
            BreakerDecision::Skip(reason) => {
                MetricsRegistry::global().incr(metric::ACTIONS_DISABLED);
                if let Some((collector, parent)) = trace {
                    let id = collector.begin(Some(parent), &format!("action:{}", action.name()));
                    collector.tag(id, "status", "disabled");
                    collector.end(id);
                }
                report.health.push(ActionHealth::new(
                    action.name(),
                    ActionStatus::Disabled(reason),
                ));
                continue;
            }
            BreakerDecision::Run | BreakerDecision::Probe => {}
        }
        let span = trace.map(|(collector, parent)| {
            collector.begin(Some(parent), &format!("action:{}", action.name()))
        });
        let gen_span =
            span.and_then(|s| trace.map(|(collector, _)| collector.begin(Some(s), "generate")));
        let generated = generate_isolated(action.as_ref(), ctx);
        if let (Some((collector, _)), Some(g)) = (trace, gen_span) {
            if let Ok(candidates) = &generated {
                collector.tag(g, "candidates", candidates.len().to_string());
            }
            collector.end(g);
        }
        match generated {
            Ok(candidates) if candidates.is_empty() => absorb_outcome(
                action.name(),
                Ok(None),
                &mut report,
                breaker,
                threshold,
                &mut on_result,
                span_ref(span),
            ),
            Ok(candidates) => {
                let cost = estimate_action(&candidates, ctx.meta, ctx.df.num_rows(), &model);
                prepared.push((action, candidates, cost, span));
            }
            Err(err) => absorb_outcome(
                action.name(),
                Err(err),
                &mut report,
                breaker,
                threshold,
                &mut on_result,
                span_ref(span),
            ),
        }
    }
    prepared.sort_by(|a, b| lux_engine::cmp_cost_asc(a.2, b.2));
    if let Some((collector, _)) = trace {
        for (order, (_, _, _, span)) in prepared.iter().enumerate() {
            if let Some(id) = span {
                collector.tag(*id, "sched.order", order.to_string());
            }
        }
    }

    let par = ctx.config.effective_threads();
    if ctx.config.r#async && par > 1 && prepared.len() > 1 {
        // Cheapest-first dispatch as work-pool fork-join tasks (the caller
        // participates while waiting); outcomes land in per-action slots
        // and are absorbed in schedule order, so the report — results,
        // health ledger, callbacks — is identical to the sequential path.
        let outcomes =
            lux_engine::parallel_map(par, prepared, |_, (action, candidates, _, span)| {
                let tctx = match (trace, span) {
                    (Some((collector, _)), Some(id)) => {
                        Some(TraceCtx::new(Arc::clone(collector), id))
                    }
                    _ => None,
                };
                if let Some(t) = &tctx {
                    t.tag(
                        "sched.worker",
                        match lux_engine::worker_index() {
                            Some(w) => w.to_string(),
                            None => "caller".to_string(),
                        },
                    );
                }
                // Per-action event sink: governor degradations buffer here and
                // are replayed onto the handle in schedule order below, so the
                // pass's event list matches the sequential path exactly.
                let asink = governor.is_some().then(event_sink);
                let outcome = execute_prepared(
                    action.as_ref(),
                    ctx,
                    sample,
                    &model,
                    candidates,
                    tctx.as_ref(),
                    governor,
                    asink.as_ref(),
                );
                (action, outcome, span, asink)
            });
        for (action, outcome, span, asink) in outcomes {
            if let (Some(g), Some(s)) = (governor, &asink) {
                g.absorb(drain_sink(s));
            }
            absorb_outcome(
                action.name(),
                outcome,
                &mut report,
                breaker,
                threshold,
                &mut on_result,
                span_ref(span),
            );
        }
    } else {
        for (action, candidates, _, span) in prepared {
            let tctx = match (trace, span) {
                (Some((collector, _)), Some(id)) => Some(TraceCtx::new(Arc::clone(collector), id)),
                _ => None,
            };
            let outcome = execute_prepared(
                action.as_ref(),
                ctx,
                sample,
                &model,
                candidates,
                tctx.as_ref(),
                governor,
                None,
            );
            absorb_outcome(
                action.name(),
                outcome,
                &mut report,
                breaker,
                threshold,
                &mut on_result,
                span_ref(span),
            );
        }
    }

    // Deterministic display order: cheapest action first (NaN costs last).
    report
        .results
        .sort_by(|a, b| lux_engine::cmp_cost_asc(a.estimated_cost, b.estimated_cost));
    report
}

/// Run every applicable action, returning only the healthy results (the
/// pre-fault-layer surface; health is discarded).
pub fn run_actions(
    registry: &ActionRegistry,
    ctx: &ActionContext<'_>,
    sample: Option<&DataFrame>,
    on_result: Option<&mut dyn FnMut(&ActionResult)>,
) -> Vec<ActionResult> {
    run_actions_report(registry, ctx, sample, on_result).results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionClass;
    use crate::fault::{ChaosAction, ChaosMode};
    use crate::metadata_actions::Correlation;
    use std::collections::HashMap;
    use std::time::Duration;

    fn fixture(rows: usize) -> (DataFrame, FrameMeta, LuxConfig) {
        let df = DataFrameBuilder::new()
            .float("a", (0..rows).map(|i| i as f64))
            .float("b", (0..rows).map(|i| (i * 2) as f64))
            .float("c", (0..rows).map(|i| ((i * 7919) % 100) as f64))
            .str(
                "dept",
                (0..rows).map(|i| if i % 2 == 0 { "S" } else { "E" }),
            )
            .build()
            .unwrap();
        let meta = FrameMeta::compute(&df, &HashMap::new());
        (df, meta, LuxConfig::default())
    }

    #[test]
    fn execute_correlation_ranks_by_r() {
        let (df, meta, config) = fixture(100);
        let ctx = ActionContext {
            df: &df,
            meta: &meta,
            intent: &[],
            intent_specs: &[],
            config: &config,
        };
        let r = execute_action(&Correlation, &ctx, None, &CostModel::default()).unwrap();
        assert_eq!(r.action, "Correlation");
        // a-b are perfectly correlated; that pair must rank first.
        let top = &r.vislist.visualizations[0];
        let attrs = top.spec.attributes();
        assert!(attrs.contains(&"a") && attrs.contains(&"b"));
        assert!((top.score - 1.0).abs() < 1e-9);
        assert!(top.data.is_some());
        assert!(!r.degraded);
    }

    #[test]
    fn run_actions_returns_all_classes_on_plain_frame() {
        let (df, meta, config) = fixture(60);
        let ctx = ActionContext {
            df: &df,
            meta: &meta,
            intent: &[],
            intent_specs: &[],
            config: &config,
        };
        let registry = ActionRegistry::with_defaults();
        let results = run_actions(&registry, &ctx, None, None);
        let names: Vec<&str> = results.iter().map(|r| r.action.as_str()).collect();
        assert!(names.contains(&"Correlation"));
        assert!(names.contains(&"Distribution"));
        assert!(names.contains(&"Occurrence"));
        // plain frame: no history/structure/intent actions fire
        assert!(results.iter().all(|r| r.class == ActionClass::Metadata));
    }

    #[test]
    fn async_and_sync_agree_on_content() {
        let (df, meta, mut config) = fixture(80);
        let registry = ActionRegistry::with_defaults();
        config.r#async = false;
        let ctx = ActionContext {
            df: &df,
            meta: &meta,
            intent: &[],
            intent_specs: &[],
            config: &config,
        };
        let sync = run_actions(&registry, &ctx, None, None);
        let mut config2 = config.clone();
        config2.r#async = true;
        let ctx2 = ActionContext {
            df: &df,
            meta: &meta,
            intent: &[],
            intent_specs: &[],
            config: &config2,
        };
        let asynced = run_actions(&registry, &ctx2, None, None);
        let names = |rs: &[ActionResult]| rs.iter().map(|r| r.action.clone()).collect::<Vec<_>>();
        assert_eq!(names(&sync), names(&asynced));
        for (a, b) in sync.iter().zip(&asynced) {
            assert_eq!(a.vislist.len(), b.vislist.len());
            for (va, vb) in a.vislist.iter().zip(b.vislist.iter()) {
                assert_eq!(va.spec, vb.spec);
            }
        }
    }

    #[test]
    fn streaming_callback_fires_per_action() {
        let (df, meta, config) = fixture(50);
        let registry = ActionRegistry::with_defaults();
        let ctx = ActionContext {
            df: &df,
            meta: &meta,
            intent: &[],
            intent_specs: &[],
            config: &config,
        };
        let mut seen = 0usize;
        let mut cb = |_r: &ActionResult| seen += 1;
        let results = run_actions(&registry, &ctx, None, Some(&mut cb));
        assert_eq!(seen, results.len());
        assert!(seen >= 3);
    }

    #[test]
    fn top_k_truncation() {
        let (df, meta, mut config) = fixture(30);
        config.top_k = 2;
        let ctx = ActionContext {
            df: &df,
            meta: &meta,
            intent: &[],
            intent_specs: &[],
            config: &config,
        };
        let r = execute_action(&Correlation, &ctx, None, &CostModel::default()).unwrap();
        assert!(r.vislist.len() <= 2);
    }

    #[test]
    fn prune_with_sample_keeps_top_pair() {
        let (df, meta, mut config) = fixture(2000);
        config.prune = true;
        config.top_k = 1;
        let sample = df.sample(100, 7);
        let ctx = ActionContext {
            df: &df,
            meta: &meta,
            intent: &[],
            intent_specs: &[],
            config: &config,
        };
        let r = execute_action(&Correlation, &ctx, Some(&sample), &CostModel::default()).unwrap();
        let attrs = r.vislist.visualizations[0].spec.attributes();
        assert!(attrs.contains(&"a") && attrs.contains(&"b"));
        // final scores are exact (recomputed), so the perfect pair scores 1
        assert!((r.vislist.visualizations[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn panicking_action_becomes_failed_health_not_a_crash() {
        let (df, meta, config) = fixture(40);
        let ctx = ActionContext {
            df: &df,
            meta: &meta,
            intent: &[],
            intent_specs: &[],
            config: &config,
        };
        let mut registry = ActionRegistry::with_defaults();
        registry.register(ChaosAction::new("Saboteur", ChaosMode::Panic));
        let report = run_actions_report(&registry, &ctx, None, None);
        assert!(report.results.iter().all(|r| r.action != "Saboteur"));
        assert!(report.results.iter().any(|r| r.action == "Correlation"));
        match report.status_of("Saboteur") {
            Some(ActionStatus::Failed(reason)) => {
                assert!(reason.contains("panicked"), "reason: {reason}")
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // healthy actions report Ok
        assert!(matches!(
            report.status_of("Correlation"),
            Some(ActionStatus::Ok)
        ));
    }

    #[test]
    fn erroring_action_health_carries_generation_error() {
        let (df, meta, config) = fixture(40);
        let ctx = ActionContext {
            df: &df,
            meta: &meta,
            intent: &[],
            intent_specs: &[],
            config: &config,
        };
        let mut registry = ActionRegistry::new();
        registry.register(ChaosAction::new("Erratic", ChaosMode::Error));
        let report = run_actions_report(&registry, &ctx, None, None);
        assert!(report.results.is_empty());
        let status = report.status_of("Erratic").unwrap();
        assert_eq!(status.name(), "failed");
        assert!(status.reason().unwrap().contains("generation failed"));
    }

    #[test]
    fn slow_action_times_out_degraded_with_partial_results() {
        let (df, meta, mut config) = fixture(40);
        config.action_budget = Some(Duration::from_millis(30));
        config.r#async = false;
        let ctx = ActionContext {
            df: &df,
            meta: &meta,
            intent: &[],
            intent_specs: &[],
            config: &config,
        };
        let mut registry = ActionRegistry::new();
        registry.register(ChaosAction::new(
            "Molasses",
            ChaosMode::SlowScore {
                per_score: Duration::from_millis(10),
                candidates: 200,
            },
        ));
        let report = run_actions_report(&registry, &ctx, None, None);
        let r = report
            .results
            .iter()
            .find(|r| r.action == "Molasses")
            .expect("partial results");
        assert!(r.degraded);
        assert!(r.degraded_reason.as_deref().unwrap().contains("budget"));
        assert!(matches!(
            report.status_of("Molasses"),
            Some(ActionStatus::Degraded(_))
        ));
    }

    #[test]
    fn breaker_disables_repeat_offender_then_reprobes() {
        let (df, meta, mut config) = fixture(20);
        config.breaker_threshold = 2;
        config.breaker_cooldown = 2;
        config.r#async = false;
        let ctx = ActionContext {
            df: &df,
            meta: &meta,
            intent: &[],
            intent_specs: &[],
            config: &config,
        };
        let mut registry = ActionRegistry::new();
        // fails twice (tripping the breaker), then recovers
        registry.register(ChaosAction::scripted(
            "Flaky",
            vec![ChaosMode::Panic, ChaosMode::Panic, ChaosMode::Healthy],
        ));
        // frames 1-2: failures
        for _ in 0..2 {
            let report = run_actions_report(&registry, &ctx, None, None);
            assert_eq!(report.status_of("Flaky").unwrap().name(), "failed");
        }
        // frame 3: breaker open -> disabled without running
        let report = run_actions_report(&registry, &ctx, None, None);
        assert_eq!(report.status_of("Flaky").unwrap().name(), "disabled");
        // frame 4: cooldown elapsed -> half-open probe runs and succeeds
        let report = run_actions_report(&registry, &ctx, None, None);
        assert_eq!(report.status_of("Flaky").unwrap().name(), "ok");
        assert!(report.results.iter().any(|r| r.action == "Flaky"));
    }
}

// ---------------------------------------------------------------------
// Streaming (owned) execution — the ASYNC user experience
// ---------------------------------------------------------------------

/// Owned inputs for background execution (everything `Arc`'d so worker
/// threads outlive the caller's borrows).
#[derive(Clone)]
pub struct OwnedContext {
    pub df: Arc<DataFrame>,
    pub meta: Arc<FrameMeta>,
    pub intent: Arc<Vec<lux_intent::Clause>>,
    pub intent_specs: Arc<Vec<VisSpec>>,
    pub config: Arc<lux_engine::LuxConfig>,
    pub sample: Option<Arc<DataFrame>>,
    /// Trace attachment for the pass (the span is the parent under which
    /// per-action spans are recorded); `None` runs untraced.
    pub trace: Option<TraceCtx>,
    /// Per-pass resource governor shared by every worker; `None` runs
    /// ungoverned (no budget enforcement).
    pub governor: Option<Arc<BudgetHandle>>,
    /// Admission slot held for the duration of the pass. The collector
    /// thread takes ownership so the slot is released only once every
    /// action has settled (or been abandoned), not when the caller's
    /// stack frame unwinds.
    pub permit: Option<Arc<lux_engine::AdmissionPermit>>,
}

impl OwnedContext {
    fn action_context(&self) -> ActionContext<'_> {
        ActionContext {
            df: &self.df,
            meta: &self.meta,
            intent: &self.intent,
            intent_specs: &self.intent_specs,
            config: &self.config,
        }
    }
}

/// A recommendation run streaming results from background workers.
///
/// This is the ASYNC optimization as the user experiences it (paper §8.2):
/// "recommendation results can be streamed into the frontend widget as the
/// computation for each action completes ... instead of incurring a high
/// wait time". Results arrive on one channel, per-action health on another;
/// a collector thread enforces the hard wall-clock cutoff — workers that
/// outlive it are abandoned (they finish on their own and their sends fail
/// harmlessly) and reported as failed. Dropping the handle likewise
/// detaches everything cleanly.
pub struct StreamingRun {
    results: mpsc::Receiver<ActionResult>,
    health: mpsc::Receiver<ActionHealth>,
    expected: usize,
}

impl StreamingRun {
    /// Receive the next completed action (blocks). `None` once all done.
    pub fn next_result(&self) -> Option<ActionResult> {
        self.results.recv().ok()
    }

    /// Non-blocking poll.
    pub fn try_next(&self) -> Option<ActionResult> {
        self.results.try_recv().ok()
    }

    /// Receive the next health entry (blocks; entries arrive as actions
    /// settle). `None` once the run is complete.
    pub fn next_health(&self) -> Option<ActionHealth> {
        self.health.recv().ok()
    }

    /// Non-blocking health poll.
    pub fn try_next_health(&self) -> Option<ActionHealth> {
        self.health.try_recv().ok()
    }

    /// How many actions were dispatched (disabled actions are not).
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Drain everything (blocks until all workers finish or the hard cutoff
    /// abandons them) and return results plus the health ledger.
    pub fn collect_report(self) -> RunReport {
        let mut results: Vec<ActionResult> = self.results.iter().collect();
        results.sort_by(|a, b| lux_engine::cmp_cost_asc(a.estimated_cost, b.estimated_cost));
        let health = self.health.iter().collect();
        RunReport { results, health }
    }

    /// Drain every remaining result (blocks until all workers finish).
    pub fn collect_all(self) -> Vec<ActionResult> {
        self.collect_report().results
    }

    /// A run that was refused admission: no actions dispatched, channels
    /// already closed, and a single health entry carrying the shed reason
    /// so report consumers see *why* nothing ran instead of an empty
    /// report that looks like success.
    pub fn shed(reason: &str) -> StreamingRun {
        let (_results_tx, results) = mpsc::channel::<ActionResult>();
        let (health_tx, health) = mpsc::channel::<ActionHealth>();
        let _ = health_tx.send(ActionHealth::new(
            "recommendations",
            ActionStatus::Failed(format!("shed by admission control: {reason}")),
        ));
        StreamingRun {
            results,
            health,
            expected: 0,
        }
    }
}

/// Dispatch every applicable action onto its own detached worker thread,
/// returning immediately with a [`StreamingRun`]. Results arrive in
/// completion order — cheap actions naturally finish first, giving the
/// paper's cheapest-first experience without blocking dispatch on a
/// cost pre-pass (which would re-introduce a hang window: on this path even
/// `generate` runs on the worker, so a hung action cannot stall the caller).
///
/// A detached collector enforces the hard cutoff at
/// `action_budget × CostModel::HARD_CUTOFF_FACTOR`: actions still running
/// then are abandoned, reported as failed, and charged to their breaker.
pub fn run_actions_streaming(registry: &ActionRegistry, owned: OwnedContext) -> StreamingRun {
    let breaker = Arc::clone(registry.breaker());
    breaker.begin_frame();
    let threshold = owned.config.breaker_threshold;
    let hard_budget = owned
        .config
        .action_budget
        .map(|base| base * CostModel::HARD_CUTOFF_FACTOR);

    // Applicability checks and the breaker gate run on the caller: both are
    // metadata-only (no user compute) and must see the registry borrow.
    let mut pre_health: Vec<ActionHealth> = Vec::new();
    let mut runnable: Vec<Arc<dyn Action>> = Vec::new();
    {
        let ctx = owned.action_context();
        for action in registry.applicable(&ctx) {
            match breaker.decision(action.name(), owned.config.breaker_cooldown) {
                BreakerDecision::Skip(reason) => {
                    MetricsRegistry::global().incr(metric::ACTIONS_DISABLED);
                    if let Some(t) = &owned.trace {
                        let id = t
                            .collector
                            .begin(Some(t.span), &format!("action:{}", action.name()));
                        t.collector.tag(id, "status", "disabled");
                        t.collector.end(id);
                    }
                    pre_health.push(ActionHealth::new(
                        action.name(),
                        ActionStatus::Disabled(reason),
                    ));
                }
                BreakerDecision::Run | BreakerDecision::Probe => runnable.push(action),
            }
        }
    }

    type Outcome = std::result::Result<Option<ActionResult>, ActionError>;
    let (worker_tx, worker_rx) = mpsc::channel::<(String, Outcome)>();
    let (results_tx, results_rx) = mpsc::channel::<ActionResult>();
    let (health_tx, health_rx) = mpsc::channel::<ActionHealth>();
    let expected = runnable.len();
    // name → per-action span (queued at dispatch; ended when the collector
    // settles the action, or tagged abandoned at the hard cutoff).
    let mut outstanding: HashMap<String, Option<SpanId>> = HashMap::new();
    let trace_collector = owned.trace.as_ref().map(|t| Arc::clone(&t.collector));

    for (order, action) in runnable.into_iter().enumerate() {
        let action_trace = owned.trace.as_ref().map(|t| {
            let id = t
                .collector
                .begin(Some(t.span), &format!("action:{}", action.name()));
            t.collector.tag(id, "sched.order", order.to_string());
            TraceCtx::new(Arc::clone(&t.collector), id)
        });
        outstanding.insert(
            action.name().to_string(),
            action_trace.as_ref().map(|t| t.span),
        );
        let owned = owned.clone();
        let worker_tx = worker_tx.clone();
        // Detached-lane pool task rather than a dedicated thread: cheap
        // actions reuse warm threads instead of paying a spawn each, while
        // a task abandoned at the hard cutoff only parks its own lane
        // thread — it can never occupy the fixed work-stealing workers that
        // run the per-vis fan-out inside healthy actions.
        lux_engine::pool::global().spawn_detached(Box::new(move || {
            if let Some(t) = &action_trace {
                t.tag(
                    "sched.worker",
                    match lux_engine::worker_index() {
                        Some(w) => w.to_string(),
                        None => "caller".to_string(),
                    },
                );
            }
            let model = CostModel::default();
            let ctx = owned.action_context();
            let outcome = execute_action_governed(
                action.as_ref(),
                &ctx,
                owned.sample.as_deref(),
                &model,
                action_trace.as_ref(),
                owned.governor.as_ref(),
            );
            let name = action.name().to_string();
            // Release this worker's context clone — and with it its
            // governor/ledger handle — *before* signaling completion. The
            // collector may settle the pass the instant this send lands,
            // and the caller's budget drop must then be the last one so
            // the global ledger reflects the pass's exit synchronously.
            drop(ctx);
            drop(action);
            drop(owned);
            let _ = worker_tx.send((name, outcome));
        }));
    }
    drop(worker_tx);

    // The collector owns the breaker bookkeeping so health stays correct
    // even when the consumer drops the StreamingRun without draining it.
    // It also owns the admission permit: the session slot stays occupied
    // until every action settles, even if the caller returns immediately.
    let permit = owned.permit.clone();
    std::thread::spawn(move || {
        let _permit = permit;
        for h in pre_health {
            let _ = health_tx.send(h);
        }
        let cutoff = hard_budget.map(|b| Instant::now() + b);
        while !outstanding.is_empty() {
            let received = match cutoff {
                Some(at) => {
                    let Some(left) = at
                        .checked_duration_since(Instant::now())
                        .filter(|d| !d.is_zero())
                    else {
                        break; // hard cutoff reached
                    };
                    match worker_rx.recv_timeout(left) {
                        Ok(msg) => Some(msg),
                        Err(mpsc::RecvTimeoutError::Timeout) => break,
                        Err(mpsc::RecvTimeoutError::Disconnected) => None,
                    }
                }
                None => worker_rx.recv().ok(),
            };
            let Some((name, outcome)) = received else {
                // a worker died without reporting (should be unreachable:
                // all action code is isolated) — fall through to cleanup
                break;
            };
            let span = outstanding.remove(&name).flatten();
            let tripped = match &outcome {
                Ok(_) => {
                    breaker.record_success(&name);
                    false
                }
                Err(err) => breaker.record_failure(&name, &err.to_string(), threshold),
            };
            settle_observability(
                &outcome,
                tripped,
                trace_collector
                    .as_deref()
                    .and_then(|c| span.map(|id| (c, id))),
            );
            match outcome {
                Ok(Some(result)) => {
                    let _ = health_tx.send(ActionHealth::new(&name, delivery_status(&result)));
                    let _ = results_tx.send(result);
                }
                Ok(None) => {}
                Err(err) => {
                    let _ = health_tx.send(ActionHealth::new(
                        &name,
                        ActionStatus::Failed(err.to_string()),
                    ));
                }
            }
        }
        // Anything still outstanding was hung (or its worker died): abandon
        // it, charge its breaker, and surface the failure.
        for (name, span) in outstanding {
            let reason = match hard_budget {
                Some(b) => format!("exceeded hard deadline ({b:?}); worker abandoned"),
                None => "worker terminated without reporting".to_string(),
            };
            let tripped = breaker.record_failure(&name, &reason, threshold);
            let metrics = MetricsRegistry::global();
            metrics.incr(metric::ACTIONS_FAILED);
            if tripped {
                metrics.incr(metric::BREAKER_TRIPS);
            }
            if let (Some(collector), Some(id)) = (trace_collector.as_deref(), span) {
                collector.tag(id, "status", "abandoned");
                collector.tag(id, "error", reason.clone());
                collector.end(id);
            }
            let _ = health_tx.send(ActionHealth::new(&name, ActionStatus::Failed(reason)));
        }
    });

    StreamingRun {
        results: results_rx,
        health: health_rx,
        expected,
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use crate::action::ActionRegistry;
    use crate::fault::{ChaosAction, ChaosMode};
    use std::collections::HashMap;
    use std::time::Duration;

    fn owned_fixture(df: DataFrame, config: LuxConfig) -> OwnedContext {
        let meta = FrameMeta::compute(&df, &HashMap::new());
        OwnedContext {
            df: Arc::new(df),
            meta: Arc::new(meta),
            intent: Arc::new(vec![]),
            intent_specs: Arc::new(vec![]),
            config: Arc::new(config),
            sample: None,
            trace: None,
            governor: None,
            permit: None,
        }
    }

    #[test]
    fn streaming_delivers_all_actions() {
        let df = DataFrameBuilder::new()
            .float("a", (0..200).map(|i| i as f64))
            .float("b", (0..200).map(|i| (i * 3 % 17) as f64))
            .str("g", (0..200).map(|i| if i % 2 == 0 { "x" } else { "y" }))
            .build()
            .unwrap();
        let registry = ActionRegistry::with_defaults();
        let run = run_actions_streaming(&registry, owned_fixture(df, LuxConfig::default()));
        let expected = run.expected();
        assert!(expected >= 3);
        let report = run.collect_report();
        assert_eq!(report.results.len(), expected);
        assert!(report.health.iter().all(|h| h.status.is_ok()));
        // ordered by estimated cost after collect
        for w in report.results.windows(2) {
            assert!(w[0].estimated_cost <= w[1].estimated_cost);
        }
    }

    #[test]
    fn dropping_run_detaches_cleanly() {
        let df = DataFrameBuilder::new()
            .float("a", (0..50).map(|i| i as f64))
            .build()
            .unwrap();
        let registry = ActionRegistry::with_defaults();
        let run = run_actions_streaming(&registry, owned_fixture(df, LuxConfig::default()));
        let _first = run.next_result();
        drop(run); // workers keep running; their sends fail silently
    }

    #[test]
    fn hung_action_is_abandoned_at_hard_cutoff() {
        let df = DataFrameBuilder::new()
            .float("a", (0..50).map(|i| i as f64))
            .build()
            .unwrap();
        let mut config = LuxConfig::default();
        config.action_budget = Some(Duration::from_millis(40));
        let mut registry = ActionRegistry::with_defaults();
        registry.register(ChaosAction::new(
            "Sleeper",
            ChaosMode::Hang(Duration::from_secs(30)),
        ));
        let start = std::time::Instant::now();
        let report = run_actions_streaming(&registry, owned_fixture(df, config)).collect_report();
        // returned in ~hard-cutoff time, not the 30 s hang
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(report.results.iter().all(|r| r.action != "Sleeper"));
        assert!(report.results.iter().any(|r| r.action == "Distribution"));
        let status = report
            .status_of("Sleeper")
            .expect("health entry for hung action");
        assert_eq!(status.name(), "failed");
        assert!(status.reason().unwrap().contains("hard deadline"));
    }
}
