//! Intent-based actions (Table 1): Current Vis, Enhance, Filter, Generalize.
//!
//! These apply when the user has attached an intent to the dataframe. The
//! paper §6: "the Enhance action recommends visualizations formed by adding
//! an additional attribute to the current visualization", Filter adds or
//! swaps a filter, Generalize removes a clause.

use lux_dataframe::prelude::*;
use lux_engine::SemanticType;
use lux_intent::{Clause, ValueSpec};
use lux_vis::VisSpec;

use crate::action::{Action, ActionClass, ActionContext, Candidate};

/// Compile a modified intent into candidates, dropping expansion failures
/// (an over-broad Enhance/Filter variant just contributes nothing).
fn compile_to_candidates(intent: &[Clause], ctx: &ActionContext<'_>) -> Vec<Candidate> {
    let opts = lux_intent::CompileOptions {
        max_filter_expansions: ctx.config.max_filter_expansions,
        histogram_bins: ctx.config.histogram_bins,
        ..Default::default()
    };
    match lux_intent::compile(intent, ctx.meta, &opts) {
        Ok(specs) => specs.into_iter().map(Candidate::new).collect(),
        Err(_) => Vec::new(),
    }
}

/// Attribute names referenced by the current intent (axes and filters).
fn intent_attributes(intent: &[Clause]) -> Vec<&str> {
    let mut out = Vec::new();
    for c in intent {
        match c {
            Clause::Axis {
                attribute: lux_intent::AttributeSpec::Named(names),
                ..
            } => {
                out.extend(names.iter().map(String::as_str));
            }
            Clause::Filter { attribute, .. } => out.push(attribute),
            _ => {}
        }
    }
    out
}

fn count_axes(intent: &[Clause]) -> usize {
    intent.iter().filter(|c| c.is_axis()).count()
}

/// The visualization(s) of the user's intent itself, shown first.
pub struct CurrentVis;

impl Action for CurrentVis {
    fn name(&self) -> &str {
        "Current Vis"
    }

    fn class(&self) -> ActionClass {
        ActionClass::Intent
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        !ctx.intent_specs.is_empty()
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        Ok(ctx
            .intent_specs
            .iter()
            .cloned()
            .map(Candidate::new)
            .collect())
    }

    /// The current vis is shown as specified, not ranked by a statistic.
    fn score(&self, _spec: &VisSpec, _frame: &DataFrame, _opts: &lux_vis::ProcessOptions) -> f64 {
        1.0
    }
}

/// Add one attribute to the current intent.
pub struct Enhance;

impl Action for Enhance {
    fn name(&self) -> &str {
        "Enhance"
    }

    fn class(&self) -> ActionClass {
        ActionClass::Intent
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        // Three axes is the most a single chart can encode (x, y, color).
        !ctx.intent.is_empty() && count_axes(ctx.intent) < 3
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        let used = intent_attributes(ctx.intent);
        let mut out = Vec::new();
        for cm in &ctx.meta.columns {
            if used.contains(&cm.name.as_str()) || cm.semantic == SemanticType::Id {
                continue;
            }
            let mut intent = ctx.intent.to_vec();
            intent.push(Clause::axis(cm.name.clone()));
            out.extend(compile_to_candidates(&intent, ctx));
        }
        Ok(out)
    }
}

/// Add one filter to the current intent, or swap an existing filter's value.
pub struct FilterAction;

impl Action for FilterAction {
    fn name(&self) -> &str {
        "Filter"
    }

    fn class(&self) -> ActionClass {
        ActionClass::Intent
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        !ctx.intent.is_empty() && count_axes(ctx.intent) >= 1
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        let mut out = Vec::new();
        let existing_filter = ctx.intent.iter().find(|c| c.is_filter());

        match existing_filter {
            // "change its value": enumerate sibling values of the filtered column.
            Some(Clause::Filter {
                attribute,
                op,
                value,
            }) => {
                let Some(cm) = ctx.meta.column(attribute) else {
                    return Ok(out);
                };
                let current = match value {
                    ValueSpec::One(v) => Some(v.clone()),
                    _ => None,
                };
                for v in cm
                    .unique_values
                    .iter()
                    .take(ctx.config.max_filter_expansions)
                {
                    if current.as_ref() == Some(v) {
                        continue;
                    }
                    let mut intent: Vec<Clause> =
                        ctx.intent.iter().filter(|c| c.is_axis()).cloned().collect();
                    intent.push(Clause::filter(attribute.clone(), *op, v.clone()));
                    out.extend(compile_to_candidates(&intent, ctx));
                }
            }
            // "add 1 additional filter": wildcard over each unused
            // low-cardinality nominal/geographic column.
            _ => {
                let used = intent_attributes(ctx.intent);
                for cm in &ctx.meta.columns {
                    let filterable = matches!(
                        cm.semantic,
                        SemanticType::Nominal | SemanticType::Geographic
                    );
                    if !filterable
                        || used.contains(&cm.name.as_str())
                        || cm.cardinality > ctx.config.max_filter_expansions
                        || cm.cardinality == 0
                    {
                        continue;
                    }
                    let mut intent = ctx.intent.to_vec();
                    intent.push(Clause::filter_wildcard(cm.name.clone()));
                    out.extend(compile_to_candidates(&intent, ctx));
                }
            }
        }
        Ok(out)
    }
}

/// Remove one attribute or filter from the current intent ("shows what the
/// data looks like with one constraint relaxed").
pub struct Generalize;

impl Action for Generalize {
    fn name(&self) -> &str {
        "Generalize"
    }

    fn class(&self) -> ActionClass {
        ActionClass::Intent
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        // Removing from a single-clause intent leaves nothing to chart.
        ctx.intent.len() >= 2
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        let mut out = Vec::new();
        let mut seen: Vec<VisSpec> = Vec::new();
        for drop_i in 0..ctx.intent.len() {
            let intent: Vec<Clause> = ctx
                .intent
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop_i)
                .map(|(_, c)| c.clone())
                .collect();
            if !intent.iter().any(|c| c.is_axis()) {
                continue;
            }
            for cand in compile_to_candidates(&intent, ctx) {
                if !seen.contains(&cand.spec) {
                    seen.push(cand.spec.clone());
                    out.push(cand);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lux_engine::{FrameMeta, LuxConfig};
    use lux_vis::{Channel, Mark};
    use std::collections::HashMap;

    struct Fixture {
        df: DataFrame,
        meta: FrameMeta,
        config: LuxConfig,
        intent: Vec<Clause>,
        specs: Vec<VisSpec>,
    }

    impl Fixture {
        fn new(intent: Vec<Clause>) -> Fixture {
            let df = DataFrameBuilder::new()
                .float("life", [70.0, 80.0, 60.0, 75.0])
                .float("inequality", [30.0, 20.0, 45.0, 25.0])
                .str("region", ["EU", "EU", "AF", "AS"])
                .str("g10", ["yes", "yes", "no", "no"])
                .build()
                .unwrap();
            let meta = FrameMeta::compute(&df, &HashMap::new());
            let config = LuxConfig::default();
            let specs = lux_intent::compile(&intent, &meta, &Default::default()).unwrap();
            Fixture {
                df,
                meta,
                config,
                intent,
                specs,
            }
        }

        fn ctx(&self) -> ActionContext<'_> {
            ActionContext {
                df: &self.df,
                meta: &self.meta,
                intent: &self.intent,
                intent_specs: &self.specs,
                config: &self.config,
            }
        }
    }

    #[test]
    fn current_vis_echoes_intent() {
        let f = Fixture::new(vec![Clause::axis("life"), Clause::axis("inequality")]);
        let c = CurrentVis.generate(&f.ctx()).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].spec.mark, Mark::Scatter);
    }

    #[test]
    fn enhance_adds_each_unused_attribute() {
        // The paper's Figure 2: intent on (life, inequality), Enhance colors
        // by each remaining attribute.
        let f = Fixture::new(vec![Clause::axis("life"), Clause::axis("inequality")]);
        let c = Enhance.generate(&f.ctx()).unwrap();
        assert_eq!(c.len(), 2); // region, g10
        assert!(c
            .iter()
            .all(|x| x.spec.channel(Channel::Color).is_some() && x.spec.mark == Mark::Scatter));
    }

    #[test]
    fn enhance_not_applicable_at_three_axes() {
        let f = Fixture::new(vec![
            Clause::axis("life"),
            Clause::axis("inequality"),
            Clause::axis("region"),
        ]);
        assert!(!Enhance.applies(&f.ctx()));
    }

    #[test]
    fn filter_action_adds_wildcard_filters() {
        let f = Fixture::new(vec![Clause::axis("life")]);
        let c = FilterAction.generate(&f.ctx()).unwrap();
        // region has 3 values, g10 has 2 -> 5 filtered histograms
        assert_eq!(c.len(), 5);
        assert!(c.iter().all(|x| x.spec.filters.len() == 1));
    }

    #[test]
    fn filter_action_swaps_existing_filter_value() {
        let f = Fixture::new(vec![
            Clause::axis("life"),
            Clause::filter("region", FilterOp::Eq, Value::str("EU")),
        ]);
        let c = FilterAction.generate(&f.ctx()).unwrap();
        assert_eq!(c.len(), 2); // AF, AS
        assert!(c
            .iter()
            .all(|x| x.spec.filters[0].value != Value::str("EU")));
    }

    #[test]
    fn generalize_drops_each_clause() {
        let f = Fixture::new(vec![
            Clause::axis("life"),
            Clause::axis("inequality"),
            Clause::filter("region", FilterOp::Eq, Value::str("EU")),
        ]);
        let c = Generalize.generate(&f.ctx()).unwrap();
        // drop life -> filtered histogram of inequality;
        // drop inequality -> filtered histogram of life;
        // drop filter -> scatter.
        assert_eq!(c.len(), 3);
        assert!(c
            .iter()
            .any(|x| x.spec.mark == Mark::Scatter && x.spec.filters.is_empty()));
    }

    #[test]
    fn generalize_requires_two_clauses() {
        let f = Fixture::new(vec![Clause::axis("life")]);
        assert!(!Generalize.applies(&f.ctx()));
    }
}
