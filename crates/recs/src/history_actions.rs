//! History-based actions (paper §6): Pre-filter and Pre-aggregate.
//!
//! These consult the operation log carried by every frame. "When a
//! filtering-based operation leads to a small dataframe (such as when a head
//! or tail is performed), Lux visualizes the previous unfiltered dataframe
//! since there are too few tuples for generating recommendations."

use std::sync::Arc;

use lux_dataframe::prelude::*;
use lux_engine::SemanticType;
use lux_vis::{Channel, Encoding, Mark, VisSpec};

use crate::action::{Action, ActionClass, ActionContext, Candidate};
use crate::structure_actions::{meta_for, univariate_spec};

/// Frames at or below this row count are "too small to recommend on";
/// the pre-filter parent is shown instead.
pub const SMALL_FRAME_ROWS: usize = 10;

/// Visualize the pre-filter parent of a freshly-subset frame.
pub struct PreFilter;

impl PreFilter {
    fn parent_of(ctx: &ActionContext<'_>) -> Option<Arc<DataFrame>> {
        let event = ctx.df.history().last_of(OpKind::Filter)?;
        let parent = event.parent.as_ref()?;
        // Only useful when the parent actually has more data to show.
        (parent.num_rows() > ctx.df.num_rows()).then(|| Arc::clone(parent))
    }
}

impl Action for PreFilter {
    fn name(&self) -> &str {
        "Pre-filter"
    }

    fn class(&self) -> ActionClass {
        ActionClass::History
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        ctx.df.num_rows() <= SMALL_FRAME_ROWS
            && ctx
                .df
                .history()
                .last()
                .is_some_and(|e| e.op == OpKind::Filter)
            && Self::parent_of(ctx).is_some()
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        let Some(parent) = Self::parent_of(ctx) else {
            return Ok(vec![]);
        };
        let parent_meta = meta_for(&parent);
        let mut out = Vec::new();
        for cm in &parent_meta.columns {
            if cm.semantic == SemanticType::Id {
                continue;
            }
            let spec = univariate_spec(&cm.name, cm.semantic, ctx.config.histogram_bins);
            out.push(Candidate::on_frame(spec, Arc::clone(&parent)));
        }
        Ok(out)
    }
}

/// Visualize the measures of the frame that fed a recent aggregation,
/// grouped by the aggregation keys — the "what did this aggregate summarize"
/// view of a pre-aggregated workflow.
pub struct PreAggregate;

impl PreAggregate {
    fn last_agg<'a>(
        ctx: &'a ActionContext<'_>,
    ) -> Option<(&'a lux_dataframe::Event, Arc<DataFrame>)> {
        let event = ctx.df.history().last_of(OpKind::Aggregate)?;
        let parent = event.parent.as_ref()?;
        Some((event, Arc::clone(parent)))
    }
}

impl Action for PreAggregate {
    fn name(&self) -> &str {
        "Pre-aggregate"
    }

    fn class(&self) -> ActionClass {
        ActionClass::History
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        Self::last_agg(ctx).is_some_and(|(e, parent)| {
            // keys recorded on the event must still exist on the parent
            !e.columns.is_empty() && e.columns.iter().all(|k| parent.has_column(k))
        })
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        let Some((event, parent)) = Self::last_agg(ctx) else {
            return Ok(vec![]);
        };
        let key = match event.columns.first() {
            Some(k) => k.clone(),
            None => return Ok(vec![]),
        };
        let parent_meta = meta_for(&parent);
        let Some(key_meta) = parent_meta.column(&key) else {
            return Ok(vec![]);
        };
        let mark = match key_meta.semantic {
            SemanticType::Temporal => Mark::Line,
            SemanticType::Geographic => Mark::Choropleth,
            _ => Mark::Bar,
        };
        let mut out = Vec::new();
        for cm in &parent_meta.columns {
            if cm.name == key || cm.semantic != SemanticType::Quantitative {
                continue;
            }
            let spec = VisSpec::new(
                mark,
                vec![
                    Encoding::new(key.clone(), key_meta.semantic, Channel::X),
                    Encoding::new(cm.name.clone(), SemanticType::Quantitative, Channel::Y)
                        .with_aggregation(Agg::Mean),
                ],
                vec![],
            );
            out.push(Candidate::on_frame(spec, Arc::clone(&parent)));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lux_engine::{FrameMeta, LuxConfig};
    use std::collections::HashMap;

    fn ctx_for(df: &DataFrame) -> ActionContext<'static> {
        let meta = FrameMeta::compute(df, &HashMap::new());
        let df = Box::leak(Box::new(df.clone()));
        let meta = Box::leak(Box::new(meta));
        let cfg = Box::leak(Box::new(LuxConfig::default()));
        ActionContext {
            df,
            meta,
            intent: &[],
            intent_specs: &[],
            config: cfg,
        }
    }

    fn base() -> DataFrame {
        DataFrameBuilder::new()
            .str("dept", (0..50).map(|i| if i % 2 == 0 { "S" } else { "E" }))
            .float("pay", (0..50).map(|i| i as f64))
            .build()
            .unwrap()
    }

    #[test]
    fn prefilter_fires_on_head_of_large_frame() {
        let small = base().head(5);
        let ctx = ctx_for(&small);
        assert!(PreFilter.applies(&ctx));
        let c = PreFilter.generate(&ctx).unwrap();
        assert_eq!(c.len(), 2); // dept bar + pay histogram, on the parent
        let parent = c[0].frame.as_ref().unwrap();
        assert_eq!(parent.num_rows(), 50);
    }

    #[test]
    fn prefilter_ignores_large_results() {
        let big = base().head(40);
        assert!(!PreFilter.applies(&ctx_for(&big)));
    }

    #[test]
    fn prefilter_requires_filter_as_last_op() {
        let df = base()
            .head(5)
            .with_column_from("pay2", "pay", |v| v.clone())
            .unwrap();
        // last op is Assign, not Filter
        assert!(!PreFilter.applies(&ctx_for(&df)));
    }

    #[test]
    fn preaggregate_uses_recorded_keys() {
        let agg = base()
            .groupby(&["dept"])
            .unwrap()
            .agg(&[("pay", Agg::Mean)])
            .unwrap();
        let ctx = ctx_for(&agg);
        assert!(PreAggregate.applies(&ctx));
        let c = PreAggregate.generate(&ctx).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].spec.channel(Channel::X).unwrap().attribute, "dept");
        assert_eq!(c[0].frame.as_ref().unwrap().num_rows(), 50);
    }

    #[test]
    fn preaggregate_not_applicable_without_history() {
        assert!(!PreAggregate.applies(&ctx_for(&base())));
    }
}
