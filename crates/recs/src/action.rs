//! The action framework (paper §7.2 "Recommendation Generation").
//!
//! An *action* generates a ranked [`VisList`] over a predefined search
//! space. The [`ActionRegistry`] holds the default actions plus any
//! user-registered custom actions with trigger predicates; the executor in
//! [`crate::generate`] runs applicable actions, applying the PRUNE
//! optimization per action and the ASYNC schedule across actions.

use std::sync::Arc;

use lux_dataframe::prelude::*;
use lux_engine::{FrameMeta, LuxConfig};
use lux_vis::{ProcessOptions, Vis, VisList, VisSpec};

use crate::score::interestingness;

/// The class an action belongs to (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionClass {
    Metadata,
    Intent,
    Structure,
    History,
    Custom,
}

impl ActionClass {
    pub fn name(self) -> &'static str {
        match self {
            ActionClass::Metadata => "metadata",
            ActionClass::Intent => "intent",
            ActionClass::Structure => "structure",
            ActionClass::History => "history",
            ActionClass::Custom => "custom",
        }
    }
}

/// Everything an action may consult while generating candidates.
pub struct ActionContext<'a> {
    pub df: &'a DataFrame,
    pub meta: &'a FrameMeta,
    /// The user's current intent, already compiled to concrete specs
    /// (empty when no intent is set).
    pub intent: &'a [lux_intent::Clause],
    pub intent_specs: &'a [VisSpec],
    pub config: &'a LuxConfig,
}

impl ActionContext<'_> {
    /// Processing options derived from the config.
    pub fn process_options(&self) -> ProcessOptions {
        ProcessOptions {
            histogram_bins: self.config.histogram_bins,
            max_bars: self.config.max_bars,
            seed: self.config.sample_seed,
            backend: if self.config.sql_backend {
                lux_vis::Backend::Sql
            } else {
                lux_vis::Backend::Native
            },
            max_group_cardinality: self.config.budget.max_group_cardinality,
            threads: self.config.effective_threads(),
            memo: self.config.wflow,
            ..ProcessOptions::default()
        }
    }
}

/// A candidate visualization produced by an action. `frame` optionally
/// overrides the dataframe the vis is processed/scored against (used by
/// history actions, which visualize a *parent* frame).
pub struct Candidate {
    pub spec: VisSpec,
    pub frame: Option<Arc<DataFrame>>,
}

impl Candidate {
    pub fn new(spec: VisSpec) -> Candidate {
        Candidate { spec, frame: None }
    }

    pub fn on_frame(spec: VisSpec, frame: Arc<DataFrame>) -> Candidate {
        Candidate {
            spec,
            frame: Some(frame),
        }
    }
}

/// One recommendation action.
pub trait Action: Send + Sync {
    /// Display name — becomes the tab label ("Correlation", "Enhance", ...).
    fn name(&self) -> &str;

    /// The taxonomy class (Table 1).
    fn class(&self) -> ActionClass;

    /// Whether the action applies to the current dataframe/intent state
    /// (the "trigger" condition for custom actions).
    fn applies(&self, ctx: &ActionContext<'_>) -> bool;

    /// Generate the candidate search space (unscored).
    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>>;

    /// Score one candidate against a frame (full data or sample). The
    /// default uses the mark-appropriate interestingness statistic.
    fn score(&self, spec: &VisSpec, frame: &DataFrame, opts: &ProcessOptions) -> f64 {
        interestingness(spec, frame, opts)
    }
}

/// The ranked output of one action.
#[derive(Debug, Clone)]
pub struct ActionResult {
    pub action: String,
    pub class: ActionClass,
    pub vislist: VisList,
    /// Cost-model estimate used for scheduling (abstract units).
    pub estimated_cost: f64,
    /// Wall time spent generating + processing, in seconds.
    pub elapsed: f64,
    /// True when the action's deadline expired and these are partial,
    /// sample-approximated results (see `lux-recs::fault`).
    pub degraded: bool,
    /// Why the result is degraded, when it is.
    pub degraded_reason: Option<String>,
}

impl ActionResult {
    /// The ranked visualizations.
    pub fn visualizations(&self) -> &[Vis] {
        &self.vislist.visualizations
    }
}

/// Holds default and custom actions (paper §7.2: "the action registry keeps
/// track of a list of possible actions ... users can also register their own
/// custom actions").
#[derive(Default)]
pub struct ActionRegistry {
    actions: Vec<Arc<dyn Action>>,
    /// Per-action failure tracking shared by every pass over this registry
    /// (and, via the `Arc`, by derived frames that clone the registry
    /// handle). See `lux-recs::fault::CircuitBreaker`.
    breaker: Arc<crate::fault::CircuitBreaker>,
}

impl ActionRegistry {
    /// An empty registry.
    pub fn new() -> ActionRegistry {
        ActionRegistry::default()
    }

    /// The registry pre-loaded with every default action of Table 1.
    pub fn with_defaults() -> ActionRegistry {
        let mut r = ActionRegistry::new();
        for a in crate::default_actions() {
            r.register_arc(a);
        }
        r
    }

    pub fn register<A: Action + 'static>(&mut self, action: A) {
        self.actions.push(Arc::new(action));
    }

    pub fn register_arc(&mut self, action: Arc<dyn Action>) {
        self.actions.push(action);
    }

    /// Remove an action by name; returns true if one was removed.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.actions.len();
        self.actions.retain(|a| a.name() != name);
        self.actions.len() != before
    }

    pub fn actions(&self) -> &[Arc<dyn Action>] {
        &self.actions
    }

    pub fn len(&self) -> usize {
        self.actions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Actions whose trigger fires for the given context.
    pub fn applicable(&self, ctx: &ActionContext<'_>) -> Vec<Arc<dyn Action>> {
        self.actions
            .iter()
            .filter(|a| a.applies(ctx))
            .cloned()
            .collect()
    }

    /// The circuit breaker tracking this registry's action failures.
    pub fn breaker(&self) -> &Arc<crate::fault::CircuitBreaker> {
        &self.breaker
    }
}

/// A custom action built from closures — the Rust analogue of the paper's
/// Python-UDF custom actions.
pub struct CustomAction<G, T>
where
    G: Fn(&ActionContext<'_>) -> Result<Vec<Candidate>> + Send + Sync,
    T: Fn(&ActionContext<'_>) -> bool + Send + Sync,
{
    name: String,
    generate: G,
    trigger: T,
}

impl<G, T> CustomAction<G, T>
where
    G: Fn(&ActionContext<'_>) -> Result<Vec<Candidate>> + Send + Sync,
    T: Fn(&ActionContext<'_>) -> bool + Send + Sync,
{
    pub fn new(name: impl Into<String>, trigger: T, generate: G) -> Self {
        CustomAction {
            name: name.into(),
            generate,
            trigger,
        }
    }
}

impl<G, T> Action for CustomAction<G, T>
where
    G: Fn(&ActionContext<'_>) -> Result<Vec<Candidate>> + Send + Sync,
    T: Fn(&ActionContext<'_>) -> bool + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> ActionClass {
        ActionClass::Custom
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        (self.trigger)(ctx)
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        (self.generate)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn context_fixture() -> (DataFrame, FrameMeta, LuxConfig) {
        let df = DataFrameBuilder::new()
            .float("x", [1.0, 2.0])
            .build()
            .unwrap();
        let meta = FrameMeta::compute(&df, &HashMap::new());
        (df, meta, LuxConfig::default())
    }

    #[test]
    fn registry_register_and_remove() {
        let mut r = ActionRegistry::new();
        assert!(r.is_empty());
        r.register(CustomAction::new("mine", |_| true, |_| Ok(vec![])));
        assert_eq!(r.len(), 1);
        assert!(r.remove("mine"));
        assert!(!r.remove("mine"));
    }

    #[test]
    fn defaults_cover_all_classes() {
        let r = ActionRegistry::with_defaults();
        let classes: std::collections::HashSet<ActionClass> =
            r.actions().iter().map(|a| a.class()).collect();
        assert!(classes.contains(&ActionClass::Metadata));
        assert!(classes.contains(&ActionClass::Intent));
        assert!(classes.contains(&ActionClass::Structure));
        assert!(classes.contains(&ActionClass::History));
    }

    #[test]
    fn custom_action_trigger_gates_applicability() {
        let (df, meta, config) = context_fixture();
        let ctx = ActionContext {
            df: &df,
            meta: &meta,
            intent: &[],
            intent_specs: &[],
            config: &config,
        };
        let on = CustomAction::new("on", |_| true, |_| Ok(vec![]));
        let off = CustomAction::new("off", |_| false, |_| Ok(vec![]));
        assert!(on.applies(&ctx));
        assert!(!off.applies(&ctx));
        let mut r = ActionRegistry::new();
        r.register(on);
        r.register(off);
        assert_eq!(r.applicable(&ctx).len(), 1);
    }
}
