//! # lux-recs
//!
//! The recommendation layer: the action framework (paper §7.2), the four
//! default action classes of Table 1, interestingness scoring, and the
//! executor that applies PRUNE (approximate two-pass top-k) inside each
//! action and ASYNC (cost-based cheapest-first scheduling) across actions.

pub mod action;
pub mod fault;
pub mod generate;
pub mod history_actions;
pub mod intent_actions;
pub mod metadata_actions;
pub mod score;
pub mod structure_actions;

use std::sync::Arc;

pub use action::{
    Action, ActionClass, ActionContext, ActionRegistry, ActionResult, Candidate, CustomAction,
};
pub use fault::{
    ActionError, ActionHealth, ActionStatus, ChaosAction, ChaosMode, CircuitBreaker, RunReport,
};
pub use generate::{
    execute_action, execute_action_governed, execute_action_guarded, execute_action_traced,
    run_actions, run_actions_report, run_actions_report_governed, run_actions_report_traced,
    run_actions_streaming, OwnedContext, StreamingRun, TraceCtx,
};

/// Every default action of Table 1, in taxonomy order.
pub fn default_actions() -> Vec<Arc<dyn Action>> {
    vec![
        Arc::new(metadata_actions::Distribution),
        Arc::new(metadata_actions::Occurrence),
        Arc::new(metadata_actions::Temporal),
        Arc::new(metadata_actions::Geographic),
        Arc::new(metadata_actions::Correlation),
        Arc::new(intent_actions::CurrentVis),
        Arc::new(intent_actions::Enhance),
        Arc::new(intent_actions::FilterAction),
        Arc::new(intent_actions::Generalize),
        Arc::new(structure_actions::SeriesVis),
        Arc::new(structure_actions::IndexVis),
        Arc::new(history_actions::PreFilter),
        Arc::new(history_actions::PreAggregate),
    ]
}
