//! Structure-based actions (paper §6): Series and Index visualizations.
//!
//! "Dataframe structure reveals strong signals for what the users
//! subsequently choose to visualize": one-column frames get their univariate
//! view, and pre-aggregated frames (labeled index from groupby/pivot/
//! crosstab) get their values charted against the index — column-wise, and
//! row-wise as in the paper's Figure 7.

use std::collections::HashMap;
use std::sync::Arc;

use lux_dataframe::prelude::*;
use lux_engine::{FrameMeta, SemanticType};
use lux_vis::{Channel, Encoding, Mark, VisSpec};

use crate::action::{Action, ActionClass, ActionContext, Candidate};

/// Build the default univariate spec for a column of a given semantic type
/// (shared with the paper's metadata actions' shapes).
pub fn univariate_spec(name: &str, semantic: SemanticType, bins: usize) -> VisSpec {
    match semantic {
        SemanticType::Quantitative => VisSpec::new(
            Mark::Histogram,
            vec![
                Encoding::new(name, semantic, Channel::X).with_bin(bins),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![],
        ),
        SemanticType::Temporal => VisSpec::new(
            Mark::Line,
            vec![
                Encoding::new(name, semantic, Channel::X),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![],
        ),
        SemanticType::Geographic => VisSpec::new(
            Mark::Choropleth,
            vec![
                Encoding::new(name, semantic, Channel::X),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![],
        ),
        _ => VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new(name, semantic, Channel::X),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![],
        ),
    }
}

/// Univariate visualization of a one-column frame (a Series printed on its
/// own).
pub struct SeriesVis;

impl Action for SeriesVis {
    fn name(&self) -> &str {
        "Series"
    }

    fn class(&self) -> ActionClass {
        ActionClass::Structure
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        ctx.df.num_columns() == 1 && ctx.df.num_rows() > 0
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        let Some(cm) = ctx.meta.columns.first() else {
            return Ok(vec![]);
        };
        if cm.semantic == SemanticType::Id {
            return Ok(vec![]);
        }
        Ok(vec![Candidate::new(univariate_spec(
            &cm.name,
            cm.semantic,
            ctx.config.histogram_bins,
        ))])
    }
}

/// The semantic type of an index label column.
fn label_semantic(labels: &Column, name: Option<&str>) -> SemanticType {
    let mut uniques = std::collections::HashSet::new();
    for i in 0..labels.len() {
        uniques.insert(labels.value(i).to_string());
    }
    lux_engine::metadata::infer_semantic(
        name.unwrap_or("index"),
        labels.dtype(),
        uniques.len(),
        labels.len(),
    )
}

/// Visualizations of a pre-aggregated frame's values grouped by its labeled
/// index: one chart per value column (column-wise), plus per-row series
/// across the columns when the frame is a pivot-style grid (Figure 7).
pub struct IndexVis;

impl IndexVis {
    /// Column-wise: each numeric column charted against the index labels.
    fn column_wise(ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        let df = ctx.df;
        let Some(labels) = df.index().values() else {
            return Ok(vec![]);
        };
        let index_name = df.index().name().unwrap_or("index").to_string();
        let semantic = label_semantic(labels, df.index().name());
        let mark = match semantic {
            SemanticType::Temporal => Mark::Line,
            SemanticType::Geographic => Mark::Choropleth,
            _ => Mark::Bar,
        };
        let mut out = Vec::new();
        for (i, col_name) in df.column_names().iter().enumerate() {
            let col = df.column_at(i);
            if !col.dtype().is_numeric() || col_name == &index_name {
                continue;
            }
            // Synthesize (label, value) and chart value by label. Labels are
            // unique in an aggregated frame, so the mean is the identity.
            let synth = DataFrame::from_columns(vec![
                (index_name.clone(), (*labels).clone()),
                (col_name.clone(), col.clone()),
            ])?;
            let spec = VisSpec::new(
                mark,
                vec![
                    Encoding::new(index_name.clone(), semantic, Channel::X),
                    Encoding::new(col_name.clone(), SemanticType::Quantitative, Channel::Y)
                        .with_aggregation(Agg::Mean),
                ],
                vec![],
            );
            out.push(Candidate::on_frame(spec, Arc::new(synth)));
        }
        Ok(out)
    }

    /// Row-wise (Figure 7): every row becomes a series over the columns.
    /// Applies when all value columns are numeric and there are at least two
    /// of them (a pivot grid); capped at top-k rows.
    fn row_wise(ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        let df = ctx.df;
        let Some(labels) = df.index().values() else {
            return Ok(vec![]);
        };
        if df.num_columns() < 2
            || !(0..df.num_columns()).all(|i| df.column_at(i).dtype().is_numeric())
        {
            return Ok(vec![]);
        }
        // Column names form the x axis; temporal if they parse as dates.
        let names = df.column_names();
        let as_dates: Option<Vec<i64>> = names
            .iter()
            .map(|n| lux_dataframe::value::parse_datetime(n))
            .collect();
        let mut out = Vec::new();
        for row in 0..df.num_rows().min(ctx.config.top_k) {
            let label = labels.value(row).to_string();
            let values: Vec<f64> = (0..df.num_columns())
                .map(|c| df.column_at(c).f64_at(row).unwrap_or(f64::NAN))
                .collect();
            let (x_col, x_sem) = match &as_dates {
                Some(dates) => (
                    Column::DateTime(PrimitiveColumn::from_values(dates.clone())),
                    SemanticType::Temporal,
                ),
                None => (
                    Column::Str(StrColumn::from_strings(names.iter().map(String::as_str))),
                    SemanticType::Nominal,
                ),
            };
            let synth = DataFrame::from_columns(vec![
                ("column".to_string(), x_col),
                (
                    label.clone(),
                    Column::Float64(PrimitiveColumn::from_values(values)),
                ),
            ])?;
            let spec = VisSpec::new(
                if x_sem == SemanticType::Temporal {
                    Mark::Line
                } else {
                    Mark::Bar
                },
                vec![
                    Encoding::new("column", x_sem, Channel::X),
                    Encoding::new(label, SemanticType::Quantitative, Channel::Y)
                        .with_aggregation(Agg::Mean),
                ],
                vec![],
            );
            out.push(Candidate::on_frame(spec, Arc::new(synth)));
        }
        Ok(out)
    }
}

impl IndexVis {
    /// Multi-level indexes (the paper's future-work extension): chart each
    /// numeric column with index level 0 on the axis and level 1 on the
    /// color channel — a 2D group-by aggregate shape.
    fn multi_level(ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        let df = ctx.df;
        let (Some(l0), Some(l1)) = (df.index().level_values(0), df.index().level_values(1)) else {
            return Ok(vec![]);
        };
        let names = df.index().level_names();
        let n0 = names
            .first()
            .copied()
            .flatten()
            .unwrap_or("level_0")
            .to_string();
        let n1 = names
            .get(1)
            .copied()
            .flatten()
            .unwrap_or("level_1")
            .to_string();
        let sem0 = label_semantic(l0, Some(&n0));
        let sem1 = label_semantic(l1, Some(&n1));
        let mark = match sem0 {
            SemanticType::Temporal => Mark::Line,
            _ => Mark::Bar,
        };
        let mut out = Vec::new();
        for (i, col_name) in df.column_names().iter().enumerate() {
            let col = df.column_at(i);
            if !col.dtype().is_numeric() || col_name == &n0 || col_name == &n1 {
                continue;
            }
            let synth = DataFrame::from_columns(vec![
                (n0.clone(), l0.clone()),
                (n1.clone(), l1.clone()),
                (col_name.clone(), col.clone()),
            ])?;
            let spec = VisSpec::new(
                mark,
                vec![
                    Encoding::new(n0.clone(), sem0, Channel::X),
                    Encoding::new(col_name.clone(), SemanticType::Quantitative, Channel::Y)
                        .with_aggregation(Agg::Mean),
                    Encoding::new(n1.clone(), sem1, Channel::Color),
                ],
                vec![],
            );
            out.push(Candidate::on_frame(spec, Arc::new(synth)));
        }
        Ok(out)
    }
}

impl Action for IndexVis {
    fn name(&self) -> &str {
        "Index"
    }

    fn class(&self) -> ActionClass {
        ActionClass::Structure
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        ctx.df.index().is_labeled()
            && ctx.df.history().contains(OpKind::Aggregate)
            && ctx.df.num_rows() > 0
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        if ctx.df.index().num_levels() >= 2 {
            return Self::multi_level(ctx);
        }
        let mut out = Self::column_wise(ctx)?;
        out.extend(Self::row_wise(ctx)?);
        Ok(out)
    }
}

/// Metadata for a synthesized/parent frame, computed on demand (these frames
/// are small aggregates, so this is cheap).
pub fn meta_for(df: &DataFrame) -> FrameMeta {
    FrameMeta::compute(df, &HashMap::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lux_engine::LuxConfig;

    fn ctx_for(df: &DataFrame, meta: &FrameMeta, cfg: &LuxConfig) -> ActionContext<'static> {
        // SAFETY-free workaround for lifetimes in tests: leak fixtures.
        let df = Box::leak(Box::new(df.clone()));
        let meta = Box::leak(Box::new(meta.clone()));
        let cfg = Box::leak(Box::new(cfg.clone()));
        ActionContext {
            df,
            meta,
            intent: &[],
            intent_specs: &[],
            config: cfg,
        }
    }

    #[test]
    fn series_vis_on_single_column() {
        let df = DataFrameBuilder::new()
            .float("x", [1.0, 2.0, 3.0])
            .build()
            .unwrap();
        let meta = meta_for(&df);
        let cfg = LuxConfig::default();
        let ctx = ctx_for(&df, &meta, &cfg);
        assert!(SeriesVis.applies(&ctx));
        let c = SeriesVis.generate(&ctx).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].spec.mark, Mark::Histogram);
    }

    #[test]
    fn series_vis_rejects_multicolumn() {
        let df = DataFrameBuilder::new()
            .float("x", [1.0])
            .float("y", [1.0])
            .build()
            .unwrap();
        let meta = meta_for(&df);
        let cfg = LuxConfig::default();
        assert!(!SeriesVis.applies(&ctx_for(&df, &meta, &cfg)));
    }

    #[test]
    fn index_vis_on_groupby_result() {
        let df = DataFrameBuilder::new()
            .str("dept", ["S", "E", "S", "E"])
            .float("pay", [1.0, 2.0, 3.0, 4.0])
            .build()
            .unwrap();
        let agg = df
            .groupby(&["dept"])
            .unwrap()
            .agg(&[("pay", Agg::Mean)])
            .unwrap();
        let meta = meta_for(&agg);
        let cfg = LuxConfig::default();
        let ctx = ctx_for(&agg, &meta, &cfg);
        assert!(IndexVis.applies(&ctx));
        let c = IndexVis.generate(&ctx).unwrap();
        // column-wise chart for "pay" (the dept key column is skipped).
        assert!(!c.is_empty());
        assert!(c[0].frame.is_some());
        assert_eq!(c[0].spec.channel(Channel::X).unwrap().attribute, "dept");
    }

    #[test]
    fn index_vis_row_wise_on_pivot() {
        // Figure 7 shape: states x months grid.
        let df = DataFrameBuilder::new()
            .str("state", ["CA", "CA", "NY", "NY"])
            .str(
                "month",
                ["2020-01-01", "2020-02-01", "2020-01-01", "2020-02-01"],
            )
            .float("cases", [1.0, 2.0, 3.0, 4.0])
            .build()
            .unwrap();
        let pivot = df.pivot("state", "month", "cases", Agg::Sum).unwrap();
        let meta = meta_for(&pivot);
        let cfg = LuxConfig::default();
        let ctx = ctx_for(&pivot, &meta, &cfg);
        let c = IndexVis.generate(&ctx).unwrap();
        // 2 column-wise + 2 row-wise (CA, NY)
        let row_wise: Vec<_> = c
            .iter()
            .filter(|x| {
                x.spec
                    .channel(Channel::X)
                    .map(|e| e.attribute == "column")
                    .unwrap_or(false)
            })
            .collect();
        assert_eq!(row_wise.len(), 2);
        // month names parse as dates -> temporal line charts
        assert!(row_wise.iter().all(|x| x.spec.mark == Mark::Line));
    }

    #[test]
    fn index_vis_multi_level_charts_level0_by_level1() {
        let df = DataFrameBuilder::new()
            .str("dept", ["S", "S", "E", "E"])
            .str("level", ["jr", "sr", "jr", "sr"])
            .float("pay", [1.0, 2.0, 3.0, 4.0])
            .build()
            .unwrap();
        let agg = df
            .groupby(&["dept", "level"])
            .unwrap()
            .agg(&[("pay", Agg::Mean)])
            .unwrap();
        assert_eq!(agg.index().num_levels(), 2);
        let meta = meta_for(&agg);
        let cfg = LuxConfig::default();
        let ctx = ctx_for(&agg, &meta, &cfg);
        assert!(IndexVis.applies(&ctx));
        let c = IndexVis.generate(&ctx).unwrap();
        assert_eq!(c.len(), 1); // one chart for the "pay" measure
        let spec = &c[0].spec;
        assert_eq!(spec.channel(Channel::X).unwrap().attribute, "dept");
        assert_eq!(spec.channel(Channel::Color).unwrap().attribute, "level");
    }

    #[test]
    fn index_vis_not_applicable_without_labels() {
        let df = DataFrameBuilder::new().float("x", [1.0]).build().unwrap();
        let meta = meta_for(&df);
        let cfg = LuxConfig::default();
        assert!(!IndexVis.applies(&ctx_for(&df, &meta, &cfg)));
    }
}
