//! Metadata-based actions (Table 1): Correlation, Distribution, Occurrence,
//! Temporal, Geographic — the always-available univariate and bivariate
//! overviews driven purely by column statistics.

use lux_dataframe::prelude::*;
use lux_engine::SemanticType;
use lux_vis::{Channel, Encoding, Mark, VisSpec};

use crate::action::{Action, ActionClass, ActionContext, Candidate};

/// Bivariate scatterplots between all pairs of quantitative attributes,
/// ranked by |Pearson's r|.
pub struct Correlation;

impl Action for Correlation {
    fn name(&self) -> &str {
        "Correlation"
    }

    fn class(&self) -> ActionClass {
        ActionClass::Metadata
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        ctx.intent.is_empty() && ctx.meta.columns_of(SemanticType::Quantitative).len() >= 2
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        let quant = ctx.meta.columns_of(SemanticType::Quantitative);
        let mut out = Vec::new();
        // Unordered pairs: the search space the paper's Q6 describes, with
        // the symmetric duplicates removed.
        for i in 0..quant.len() {
            for j in i + 1..quant.len() {
                out.push(Candidate::new(VisSpec::new(
                    Mark::Scatter,
                    vec![
                        Encoding::new(quant[i], SemanticType::Quantitative, Channel::X),
                        Encoding::new(quant[j], SemanticType::Quantitative, Channel::Y),
                    ],
                    vec![],
                )));
            }
        }
        Ok(out)
    }
}

/// Univariate histograms of quantitative attributes, ranked by |skewness|.
pub struct Distribution;

impl Action for Distribution {
    fn name(&self) -> &str {
        "Distribution"
    }

    fn class(&self) -> ActionClass {
        ActionClass::Metadata
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        ctx.intent.is_empty() && !ctx.meta.columns_of(SemanticType::Quantitative).is_empty()
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        Ok(ctx
            .meta
            .columns_of(SemanticType::Quantitative)
            .into_iter()
            .map(|name| {
                Candidate::new(VisSpec::new(
                    Mark::Histogram,
                    vec![
                        Encoding::new(name, SemanticType::Quantitative, Channel::X)
                            .with_bin(ctx.config.histogram_bins),
                        Encoding::synthetic_count(Channel::Y),
                    ],
                    vec![],
                ))
            })
            .collect())
    }
}

/// Univariate bar charts of categorical attributes, ranked by how uneven
/// the category counts are.
pub struct Occurrence;

impl Action for Occurrence {
    fn name(&self) -> &str {
        "Occurrence"
    }

    fn class(&self) -> ActionClass {
        ActionClass::Metadata
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        ctx.intent.is_empty() && !ctx.meta.columns_of(SemanticType::Nominal).is_empty()
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        Ok(ctx
            .meta
            .columns_of(SemanticType::Nominal)
            .into_iter()
            .map(|name| {
                Candidate::new(VisSpec::new(
                    Mark::Bar,
                    vec![
                        Encoding::new(name, SemanticType::Nominal, Channel::X),
                        Encoding::synthetic_count(Channel::Y),
                    ],
                    vec![],
                ))
            })
            .collect())
    }
}

/// Univariate line charts of temporal attributes (record counts over time).
pub struct Temporal;

impl Action for Temporal {
    fn name(&self) -> &str {
        "Temporal"
    }

    fn class(&self) -> ActionClass {
        ActionClass::Metadata
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        ctx.intent.is_empty() && !ctx.meta.columns_of(SemanticType::Temporal).is_empty()
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        Ok(ctx
            .meta
            .columns_of(SemanticType::Temporal)
            .into_iter()
            .map(|name| {
                let semantic = ctx
                    .meta
                    .column(name)
                    .map(|c| c.semantic)
                    .unwrap_or(SemanticType::Temporal);
                Candidate::new(VisSpec::new(
                    Mark::Line,
                    vec![
                        Encoding::new(name, semantic, Channel::X),
                        Encoding::synthetic_count(Channel::Y),
                    ],
                    vec![],
                ))
            })
            .collect())
    }
}

/// Choropleth maps: each geographic attribute against each quantitative
/// measure (mean per region), ranked by how much the measure varies across
/// regions.
pub struct Geographic;

impl Action for Geographic {
    fn name(&self) -> &str {
        "Geographic"
    }

    fn class(&self) -> ActionClass {
        ActionClass::Metadata
    }

    fn applies(&self, ctx: &ActionContext<'_>) -> bool {
        ctx.intent.is_empty() && !ctx.meta.columns_of(SemanticType::Geographic).is_empty()
    }

    fn generate(&self, ctx: &ActionContext<'_>) -> Result<Vec<Candidate>> {
        let geos = ctx.meta.columns_of(SemanticType::Geographic);
        let quants = ctx.meta.columns_of(SemanticType::Quantitative);
        let mut out = Vec::new();
        for g in &geos {
            if quants.is_empty() {
                out.push(Candidate::new(VisSpec::new(
                    Mark::Choropleth,
                    vec![
                        Encoding::new(*g, SemanticType::Geographic, Channel::X),
                        Encoding::synthetic_count(Channel::Y),
                    ],
                    vec![],
                )));
            }
            for q in &quants {
                out.push(Candidate::new(VisSpec::new(
                    Mark::Choropleth,
                    vec![
                        Encoding::new(*g, SemanticType::Geographic, Channel::X),
                        Encoding::new(*q, SemanticType::Quantitative, Channel::Y)
                            .with_aggregation(Agg::Mean),
                    ],
                    vec![],
                )));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lux_engine::{FrameMeta, LuxConfig};
    use std::collections::HashMap;

    fn fixture() -> (DataFrame, FrameMeta, LuxConfig) {
        let df = DataFrameBuilder::new()
            .float("a", [1.0, 2.0, 3.0])
            .float("b", [3.0, 2.0, 1.0])
            .float("c", [1.0, 1.0, 9.0])
            .str("dept", ["S", "E", "S"])
            .str("country", ["US", "FR", "US"])
            .datetime("date", ["2020-01-01", "2020-01-02", "2020-01-03"])
            .build()
            .unwrap();
        let meta = FrameMeta::compute(&df, &HashMap::new());
        (df, meta, LuxConfig::default())
    }

    macro_rules! ctx {
        ($df:expr, $meta:expr, $cfg:expr) => {
            ActionContext {
                df: &$df,
                meta: &$meta,
                intent: &[],
                intent_specs: &[],
                config: &$cfg,
            }
        };
    }

    #[test]
    fn correlation_generates_unordered_pairs() {
        let (df, meta, cfg) = fixture();
        let ctx = ctx!(df, meta, cfg);
        assert!(Correlation.applies(&ctx));
        let c = Correlation.generate(&ctx).unwrap();
        assert_eq!(c.len(), 3); // C(3,2) over a,b,c
    }

    #[test]
    fn distribution_one_histogram_per_quant() {
        let (df, meta, cfg) = fixture();
        let ctx = ctx!(df, meta, cfg);
        let c = Distribution.generate(&ctx).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|x| x.spec.mark == Mark::Histogram));
    }

    #[test]
    fn occurrence_covers_nominal_only() {
        let (df, meta, cfg) = fixture();
        let ctx = ctx!(df, meta, cfg);
        let c = Occurrence.generate(&ctx).unwrap();
        // dept is nominal; country is geographic so excluded here
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].spec.channel(Channel::X).unwrap().attribute, "dept");
    }

    #[test]
    fn temporal_and_geographic() {
        let (df, meta, cfg) = fixture();
        let ctx = ctx!(df, meta, cfg);
        assert_eq!(Temporal.generate(&ctx).unwrap().len(), 1);
        let g = Geographic.generate(&ctx).unwrap();
        assert_eq!(g.len(), 3); // country x {a,b,c}
        assert!(g.iter().all(|x| x.spec.mark == Mark::Choropleth));
    }

    #[test]
    fn actions_do_not_apply_when_intent_set() {
        let (df, meta, cfg) = fixture();
        let intent = vec![lux_intent::Clause::axis("a")];
        let ctx = ActionContext {
            df: &df,
            meta: &meta,
            intent: &intent,
            intent_specs: &[],
            config: &cfg,
        };
        assert!(!Correlation.applies(&ctx));
        assert!(!Distribution.applies(&ctx));
    }

    #[test]
    fn applicability_requires_matching_columns() {
        let df = DataFrameBuilder::new().str("only", ["x"]).build().unwrap();
        let meta = FrameMeta::compute(&df, &HashMap::new());
        let cfg = LuxConfig::default();
        let ctx = ctx!(df, meta, cfg);
        assert!(!Correlation.applies(&ctx));
        assert!(!Distribution.applies(&ctx));
        assert!(Occurrence.applies(&ctx));
        assert!(!Temporal.applies(&ctx));
    }
}
