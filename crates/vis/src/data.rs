//! Visualization data processing (paper §8.1 "Visualization Processing").
//!
//! Translates a complete [`VisSpec`] into the relational operations of
//! Table 2 against a dataframe, producing a small result frame that is
//! decoupled from the source data (the paper's WYSIWYG rule: recommendations
//! are views, they never mutate the user's dataframe).

use std::sync::Arc;

use lux_dataframe::prelude::*;
use lux_engine::governor::{BudgetHandle, DegradeLevel, EventSink, GovernorEvent};
use lux_engine::lock_recover;
use lux_engine::trace::{names, MetricsRegistry};

use crate::spec::{Channel, Mark, VisSpec};

/// Which execution backend processes visualization data (paper §7: the
/// engine runs "either as a series of dataframe operations ... or
/// equivalently in SQL queries").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Native columnar kernels (the default).
    #[default]
    Native,
    /// Translate to SQL and run through the in-crate SQL engine.
    Sql,
}

/// Limits applied during processing.
#[derive(Debug, Clone)]
pub struct ProcessOptions {
    /// Bin count for histograms when the encoding does not specify one.
    pub histogram_bins: usize,
    /// Bar charts keep only this many highest bars.
    pub max_bars: usize,
    /// Scatterplots are downsampled beyond this many points.
    pub max_points: usize,
    /// Per-axis bins for heatmaps.
    pub heatmap_bins: usize,
    /// Seed for deterministic scatter downsampling.
    pub seed: u64,
    /// Execution backend.
    pub backend: Backend,
    /// Line charts over temporal axes with more distinct instants than this
    /// are resampled into this many equal-width time buckets.
    pub temporal_buckets: usize,
    /// Hard ceiling on group-by output cardinality during processing: keys
    /// beyond it fold into a single `"(other)"` group, so a near-unique
    /// axis can never materialize millions of groups.
    pub max_group_cardinality: usize,
    /// Per-pass budget handle; when set, allocation-heavy steps charge it
    /// and record their degradations.
    pub governor: Option<Arc<BudgetHandle>>,
    /// Deferred-event buffer: when set, degradations are pushed here
    /// instead of recorded live on the governor, so a parallel caller can
    /// replay them in schedule order (see `lux_engine::governor::EventSink`).
    pub event_sink: Option<EventSink>,
    /// Parallelism hint for data-parallel kernels (group-by sharding).
    /// `1` (the default) keeps every kernel strictly sequential.
    pub threads: usize,
    /// Consult and fill the processed-vis memo cache (the paper's WFLOW
    /// rule extended past metadata). Off by default so direct `process`
    /// calls never observe cross-call state.
    pub memo: bool,
    /// When set, the SQL backend counts transient-error retry attempts
    /// here, so the action executor can tag them onto its trace span.
    pub sql_attempts: Option<Arc<std::sync::atomic::AtomicU64>>,
}

impl Default for ProcessOptions {
    fn default() -> Self {
        ProcessOptions {
            histogram_bins: 10,
            max_bars: 15,
            max_points: 5_000,
            heatmap_bins: 20,
            seed: 7,
            backend: Backend::Native,
            temporal_buckets: 64,
            max_group_cardinality: 1_000,
            governor: None,
            event_sink: None,
            threads: 1,
            memo: false,
            sql_attempts: None,
        }
    }
}

/// Process the data for one visualization. The result is a small dataframe
/// whose columns match the spec's channels (`x`, `y`, and optionally
/// `color`-named after the source attributes, or `count` for synthetic
/// count axes).
///
/// With [`ProcessOptions::memo`] set, results are served from a bounded
/// process-wide cache keyed on the source frame's fingerprint and the full
/// spec/options serialization. Only exact (non-degraded) results are
/// cached: a pass whose governor recorded a degradation during processing
/// computed something budget-shaped, not data-shaped, and must not leak
/// into healthier passes.
pub fn process(spec: &VisSpec, df: &DataFrame, opts: &ProcessOptions) -> Result<DataFrame> {
    if !opts.memo {
        return process_uncached(spec, df, opts);
    }
    let key = memo::key(spec, opts);
    let fingerprint = df.fingerprint();
    let metrics = MetricsRegistry::global();
    if let Some(hit) = memo::get(fingerprint, &key) {
        metrics.incr(names::VIS_MEMO_HIT);
        return Ok(hit);
    }
    // Bracket the computation with a call-local sink: a degradation is
    // whatever THIS call recorded, never what a concurrently-running vis
    // happened to record on the shared handle in the same window.
    let call_sink = lux_engine::governor::event_sink();
    let mut inner = opts.clone();
    inner.event_sink = Some(call_sink.clone());
    let result = process_uncached(spec, df, &inner);
    let events = lux_engine::governor::drain_sink(&call_sink);
    let degraded = !events.is_empty();
    if !events.is_empty() {
        // Hand the events back to whatever the caller was collecting into.
        if let Some(outer) = &opts.event_sink {
            lock_recover(outer).extend(events);
        } else if let Some(g) = &opts.governor {
            g.absorb(events);
        }
    }
    let out = result?;
    if degraded {
        metrics.incr(names::VIS_MEMO_MISS);
    } else if memo::insert(fingerprint, key, out.clone()) {
        // Another worker finished the same vis while we computed: count it
        // as the hit it would have been sequentially, so hit/miss totals
        // stay identical across thread counts.
        metrics.incr(names::VIS_MEMO_HIT);
    } else {
        metrics.incr(names::VIS_MEMO_MISS);
    }
    Ok(out)
}

fn process_uncached(spec: &VisSpec, df: &DataFrame, opts: &ProcessOptions) -> Result<DataFrame> {
    if opts.backend == Backend::Sql {
        return crate::sql::process_sql(spec, df, opts);
    }
    // 1. Apply the filter conjunction.
    let mut filtered;
    let mut frame = df;
    if !spec.filters.is_empty() {
        filtered = df.clone();
        for f in &spec.filters {
            filtered = filtered.filter(&f.attribute, f.op, &f.value)?;
        }
        frame = &filtered;
    }

    // 2. Mark-specific processing.
    match spec.mark {
        Mark::Scatter => process_scatter(spec, frame, opts),
        Mark::Bar | Mark::Line | Mark::Choropleth => process_group_agg(spec, frame, opts),
        Mark::Histogram => process_histogram(spec, frame, opts),
        Mark::Heatmap => process_heatmap(spec, frame, opts),
    }
}

/// Record a processing degradation: buffered into the caller's
/// [`EventSink`] when one is attached (deterministic parallel replay),
/// otherwise recorded live on the governor.
fn record_degrade(opts: &ProcessOptions, stage: String, level: DegradeLevel, detail: String) {
    if let Some(sink) = &opts.event_sink {
        lock_recover(sink).push(GovernorEvent {
            stage,
            level,
            detail,
        });
    } else if let Some(g) = &opts.governor {
        g.record(stage, level, detail);
    }
}

fn x_attr(spec: &VisSpec) -> Result<&str> {
    spec.channel(Channel::X)
        .map(|e| e.attribute.as_str())
        .ok_or_else(|| Error::InvalidArgument(format!("spec {spec} has no x encoding")))
}

fn process_scatter(spec: &VisSpec, df: &DataFrame, opts: &ProcessOptions) -> Result<DataFrame> {
    let x = x_attr(spec)?;
    let y = spec
        .channel(Channel::Y)
        .map(|e| e.attribute.as_str())
        .ok_or_else(|| Error::InvalidArgument("scatter requires a y encoding".into()))?;
    let mut cols = vec![x, y];
    if let Some(c) = spec.channel(Channel::Color) {
        if !cols.contains(&c.attribute.as_str()) {
            cols.push(&c.attribute);
        }
    }
    let selected = df.select(&cols)?;
    if selected.num_rows() > opts.max_points {
        Ok(selected.sample(opts.max_points, opts.seed))
    } else {
        Ok(selected)
    }
}

/// Bar / line / choropleth: (1D or 2D) group-by aggregation.
fn process_group_agg(spec: &VisSpec, df: &DataFrame, opts: &ProcessOptions) -> Result<DataFrame> {
    let x = x_attr(spec)?;

    // High-cardinality temporal axes get resampled into time buckets before
    // grouping: a line chart over raw timestamps would emit one point per
    // distinct instant (unreadable and as expensive as the raw data).
    let resampled;
    let df = if spec.mark == Mark::Line
        && matches!(df.column(x)?.dtype(), lux_dataframe::DType::DateTime)
    {
        let distinct = df.cardinality(x)?;
        if distinct > opts.temporal_buckets {
            resampled = resample_temporal(df, x, opts.temporal_buckets)?;
            &resampled
        } else {
            df
        }
    } else {
        df
    };

    let color = spec.channel(Channel::Color).map(|e| e.attribute.as_str());
    let mut keys = vec![x];
    if let Some(c) = color {
        if c != x {
            keys.push(c);
        }
    }
    // Grouping cost is ~8 bytes/row (group-id vector + hash-map entries up
    // to the cap); charge it, and tighten the cap to the displayable bar
    // count once the pass budget is spent.
    let mut group_cap = opts.max_group_cardinality;
    if let Some(g) = &opts.governor {
        if !g.try_charge(df.num_rows() as u64 * 8) {
            group_cap = group_cap.min(opts.max_bars.max(1));
            record_degrade(
                opts,
                format!("process:{x}"),
                DegradeLevel::CappedCardinality,
                "pass memory budget exhausted; group cap tightened".to_string(),
            );
        }
    }
    let gb = df.groupby_capped_par(&keys, group_cap, opts.threads)?;
    if gb.is_capped() && opts.governor.is_some() {
        record_degrade(
            opts,
            format!("process:{x}"),
            DegradeLevel::CappedCardinality,
            format!("distinct group keys exceed cap {group_cap}; folded into \"(other)\""),
        );
    }

    let y_enc = spec.channel(Channel::Y);
    let grouped = match y_enc {
        Some(e) if !e.synthetic => {
            let agg = e.aggregation.unwrap_or(Agg::Mean);
            gb.agg(&[(e.attribute.as_str(), agg)])?
        }
        _ => gb.count()?,
    };
    let y_col = match y_enc {
        Some(e) if !e.synthetic => e.attribute.clone(),
        _ => "count".to_string(),
    };

    match spec.mark {
        Mark::Bar => {
            // Rank bars by value and keep the top ones so high-cardinality
            // axes stay readable (and bounded in cost).
            let sorted = grouped.sort_by(&[y_col.as_str()], false)?;
            Ok(sorted.head(opts.max_bars))
        }
        // Lines and maps read left-to-right / by region: sort by the axis.
        _ => grouped.sort_by(&[x], true),
    }
}

fn process_histogram(spec: &VisSpec, df: &DataFrame, opts: &ProcessOptions) -> Result<DataFrame> {
    let x_enc = spec
        .channel(Channel::X)
        .ok_or_else(|| Error::InvalidArgument("histogram requires an x encoding".into()))?;
    let bins = x_enc.bin.unwrap_or(opts.histogram_bins);
    let (edges, counts) = df.histogram(&x_enc.attribute, bins)?;
    let starts: Vec<f64> = edges[..edges.len() - 1].to_vec();
    DataFrameBuilder::new()
        .float(&x_enc.attribute, starts)
        .int(
            "count",
            counts.iter().map(|&c| c as i64).collect::<Vec<_>>(),
        )
        .build()
}

/// 2D bin + count (+ group-by mean for the color channel).
fn process_heatmap(spec: &VisSpec, df: &DataFrame, opts: &ProcessOptions) -> Result<DataFrame> {
    let x_enc = spec
        .channel(Channel::X)
        .ok_or_else(|| Error::InvalidArgument("heatmap requires an x encoding".into()))?;
    let y_enc = spec
        .channel(Channel::Y)
        .ok_or_else(|| Error::InvalidArgument("heatmap requires a y encoding".into()))?;
    let xb = x_enc.bin.unwrap_or(opts.heatmap_bins);
    let yb = y_enc.bin.unwrap_or(opts.heatmap_bins);
    let xcol = df.column(&x_enc.attribute)?;
    let ycol = df.column(&y_enc.attribute)?;
    let color = spec.channel(Channel::Color).filter(|e| !e.synthetic);
    let ccol = color.map(|e| df.column(&e.attribute)).transpose()?;

    let (xlo, xhi) = xcol.min_max_finite().unwrap_or((0.0, 1.0));
    let (ylo, yhi) = ycol.min_max_finite().unwrap_or((0.0, 1.0));

    let mut counts = vec![0i64; xb * yb];
    let mut sums = vec![0f64; xb * yb];
    for i in 0..df.num_rows() {
        let (Some(xv), Some(yv)) = (xcol.f64_at(i), ycol.f64_at(i)) else {
            continue;
        };
        if !xv.is_finite() || !yv.is_finite() {
            continue;
        }
        let bx = bin_idx(xv, xlo, xhi, xb);
        let by = bin_idx(yv, ylo, yhi, yb);
        let cell = by * xb + bx;
        counts[cell] += 1;
        if let Some(c) = &ccol {
            if let Some(cv) = c.f64_at(i) {
                if !cv.is_nan() {
                    sums[cell] += cv;
                }
            }
        }
    }

    // Emit only non-empty cells.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut ns = Vec::new();
    let mut cs = Vec::new();
    for by in 0..yb {
        for bx in 0..xb {
            let cell = by * xb + bx;
            if counts[cell] == 0 {
                continue;
            }
            xs.push(bin_edge(bx, xlo, xhi, xb));
            ys.push(bin_edge(by, ylo, yhi, yb));
            ns.push(counts[cell]);
            cs.push(sums[cell] / counts[cell] as f64);
        }
    }
    let mut b = DataFrameBuilder::new()
        .float(&x_enc.attribute, xs)
        .float(&y_enc.attribute, ys)
        .int("count", ns);
    if let Some(e) = color {
        b = b.float(&format!("mean_{}", e.attribute), cs);
    }
    b.build()
}

/// Replace a datetime column with its values floored to one of `buckets`
/// equal-width time buckets (bucket-start timestamps).
fn resample_temporal(df: &DataFrame, column: &str, buckets: usize) -> Result<DataFrame> {
    let col = df.column(column)?;
    let (lo, hi) = col.min_max_finite().unwrap_or((0.0, 1.0));
    let buckets = buckets.max(1);
    let binned: Vec<Value> = (0..col.len())
        .map(|i| match col.f64_at(i) {
            Some(v) if v.is_finite() => {
                let b = bin_idx(v, lo, hi, buckets);
                Value::DateTime(bin_edge(b, lo, hi, buckets) as i64)
            }
            _ => Value::Null,
        })
        .collect();
    df.with_column(column, Column::from_values(&binned)?)
}

/// Equal-width bin index of a finite `v` over `[lo, hi]`. The half-span
/// form stays finite even when `hi - lo` would overflow to inf.
fn bin_idx(v: f64, lo: f64, hi: f64, nbins: usize) -> usize {
    let half_span = hi * 0.5 - lo * 0.5;
    if !(half_span > 0.0) {
        return 0;
    }
    let pos = ((v * 0.5 - lo * 0.5) / half_span).clamp(0.0, 1.0);
    ((pos * nbins as f64) as usize).min(nbins - 1)
}

/// Start edge of bin `b`, computed as a convex combination (overflow-safe).
fn bin_edge(b: usize, lo: f64, hi: f64, nbins: usize) -> f64 {
    let t = b as f64 / nbins as f64;
    lo * (1.0 - t) + hi * t
}

/// Processed-vis memo cache (paper's WFLOW rule applied to processing, not
/// just metadata). Process-wide like [`MetricsRegistry`], bounded FIFO.
/// Entries key on the source frame's fingerprint, so any derivation — which
/// re-stamps the fingerprint — naturally invalidates; stale entries age out
/// of the FIFO without explicit hooks.
mod memo {
    use std::collections::{HashMap, VecDeque};
    use std::sync::Mutex;

    use lux_dataframe::DataFrame;
    use lux_engine::lock_recover;

    use super::{ProcessOptions, VisSpec};

    const CAPACITY: usize = 256;

    struct Store {
        map: HashMap<(u64, String), DataFrame>,
        order: VecDeque<(u64, String)>,
    }

    static STORE: Mutex<Option<Store>> = Mutex::new(None);

    /// Full cache key: the spec serialization plus every option that can
    /// change the processed output.
    pub(super) fn key(spec: &VisSpec, opts: &ProcessOptions) -> String {
        format!(
            "{}|hb={}|mb={}|mp={}|hm={}|s={}|tb={}|gc={}|be={:?}",
            spec.cache_key(),
            opts.histogram_bins,
            opts.max_bars,
            opts.max_points,
            opts.heatmap_bins,
            opts.seed,
            opts.temporal_buckets,
            opts.max_group_cardinality,
            opts.backend,
        )
    }

    pub(super) fn get(fingerprint: u64, key: &str) -> Option<DataFrame> {
        // Injected lookup failure reads as a miss (the vis recomputes).
        if lux_engine::failpoint::hit(lux_engine::failpoint::names::MEMO_VIS_LOOKUP).is_some() {
            return None;
        }
        // Recover from poisoning: a panic while the lock was held (e.g. an
        // injected insert fault) leaves plain map/deque state that is never
        // torn across a panic point — silently disabling the cache for the
        // rest of the process (the old `.lock().ok()?`) wedged every later
        // pass into miss-and-recompute.
        let guard = lock_recover(&STORE);
        guard
            .as_ref()?
            .map
            .get(&(fingerprint, key.to_string()))
            .cloned()
    }

    /// Insert unless present. Returns `true` when an entry already existed
    /// (a concurrent computation of the same vis won the race).
    pub(super) fn insert(fingerprint: u64, key: String, value: DataFrame) -> bool {
        let mut guard = lock_recover(&STORE);
        // Inside the critical section on purpose: a `panic` action poisons
        // the store mutex mid-insert, which the poisoning regression test
        // requires later passes to survive.
        if lux_engine::failpoint::hit(lux_engine::failpoint::names::MEMO_VIS_INSERT).is_some() {
            return false;
        }
        let store = guard.get_or_insert_with(|| Store {
            map: HashMap::new(),
            order: VecDeque::new(),
        });
        let k = (fingerprint, key);
        if store.map.contains_key(&k) {
            return true;
        }
        if store.order.len() >= CAPACITY {
            if let Some(old) = store.order.pop_front() {
                store.map.remove(&old);
            }
        }
        store.order.push_back(k.clone());
        store.map.insert(k, value);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Encoding, FilterSpec};
    use lux_engine::SemanticType;

    fn sample_df() -> DataFrame {
        DataFrameBuilder::new()
            .str("dept", ["Sales", "Eng", "Sales", "Eng", "HR"])
            .float("pay", [50.0, 80.0, 60.0, 90.0, 55.0])
            .float("age", [25.0, 32.0, 47.0, 28.0, 36.0])
            .build()
            .unwrap()
    }

    fn opts() -> ProcessOptions {
        ProcessOptions::default()
    }

    #[test]
    fn scatter_selects_columns() {
        let spec = VisSpec::new(
            Mark::Scatter,
            vec![
                Encoding::new("pay", SemanticType::Quantitative, Channel::X),
                Encoding::new("age", SemanticType::Quantitative, Channel::Y),
            ],
            vec![],
        );
        let out = process(&spec, &sample_df(), &opts()).unwrap();
        assert_eq!(out.column_names(), &["pay", "age"]);
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn scatter_downsamples() {
        let df = DataFrameBuilder::new()
            .float("a", (0..1000).map(|i| i as f64))
            .float("b", (0..1000).map(|i| (i * 2) as f64))
            .build()
            .unwrap();
        let spec = VisSpec::new(
            Mark::Scatter,
            vec![
                Encoding::new("a", SemanticType::Quantitative, Channel::X),
                Encoding::new("b", SemanticType::Quantitative, Channel::Y),
            ],
            vec![],
        );
        let o = ProcessOptions {
            max_points: 100,
            ..opts()
        };
        let out = process(&spec, &df, &o).unwrap();
        assert_eq!(out.num_rows(), 100);
    }

    #[test]
    fn bar_groups_and_sorts_desc() {
        let spec = VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("dept", SemanticType::Nominal, Channel::X),
                Encoding::new("pay", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Mean),
            ],
            vec![],
        );
        let out = process(&spec, &sample_df(), &opts()).unwrap();
        assert_eq!(out.num_rows(), 3);
        // Eng has the highest mean pay (85), so it comes first.
        assert_eq!(out.value(0, "dept").unwrap(), Value::str("Eng"));
        assert_eq!(out.value(0, "pay").unwrap(), Value::Float(85.0));
    }

    #[test]
    fn bar_count_when_no_measure() {
        let spec = VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("dept", SemanticType::Nominal, Channel::X),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![],
        );
        let out = process(&spec, &sample_df(), &opts()).unwrap();
        assert!(out.has_column("count"));
        assert_eq!(out.value(0, "count").unwrap(), Value::Int(2));
    }

    #[test]
    fn bar_caps_at_max_bars() {
        let df = DataFrameBuilder::new()
            .str("k", (0..100).map(|i| format!("k{i}")))
            .float("v", (0..100).map(|i| i as f64))
            .build()
            .unwrap();
        let spec = VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("k", SemanticType::Nominal, Channel::X),
                Encoding::new("v", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Mean),
            ],
            vec![],
        );
        let o = ProcessOptions {
            max_bars: 10,
            ..opts()
        };
        let out = process(&spec, &df, &o).unwrap();
        assert_eq!(out.num_rows(), 10);
        assert_eq!(out.value(0, "k").unwrap(), Value::str("k99"));
    }

    #[test]
    fn colored_bar_is_2d_group() {
        let df = DataFrameBuilder::new()
            .str("dept", ["S", "S", "E", "E"])
            .str("level", ["jr", "sr", "jr", "sr"])
            .float("pay", [1.0, 2.0, 3.0, 4.0])
            .build()
            .unwrap();
        let spec = VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("dept", SemanticType::Nominal, Channel::X),
                Encoding::new("pay", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Mean),
                Encoding::new("level", SemanticType::Nominal, Channel::Color),
            ],
            vec![],
        );
        let out = process(&spec, &df, &opts()).unwrap();
        assert_eq!(out.num_rows(), 4); // dept x level combinations
        assert!(out.has_column("level"));
    }

    #[test]
    fn histogram_bins_and_counts() {
        let df = DataFrameBuilder::new()
            .float("v", (0..100).map(|i| i as f64))
            .build()
            .unwrap();
        let spec = VisSpec::new(
            Mark::Histogram,
            vec![
                Encoding::new("v", SemanticType::Quantitative, Channel::X).with_bin(5),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![],
        );
        let out = process(&spec, &df, &opts()).unwrap();
        assert_eq!(out.num_rows(), 5);
        let total: i64 = (0..5)
            .map(|i| out.value(i, "count").unwrap().as_f64().unwrap() as i64)
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn filters_apply_before_processing() {
        let spec = VisSpec::new(
            Mark::Histogram,
            vec![
                Encoding::new("pay", SemanticType::Quantitative, Channel::X).with_bin(4),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![FilterSpec::new("dept", FilterOp::Eq, Value::str("Sales"))],
        );
        let out = process(&spec, &sample_df(), &opts()).unwrap();
        let total: i64 = (0..out.num_rows())
            .map(|i| out.value(i, "count").unwrap().as_f64().unwrap() as i64)
            .sum();
        assert_eq!(total, 2); // only the two Sales rows
    }

    #[test]
    fn heatmap_cells() {
        let df = DataFrameBuilder::new()
            .float("a", (0..100).map(|i| (i % 10) as f64))
            .float("b", (0..100).map(|i| (i / 10) as f64))
            .build()
            .unwrap();
        let spec = VisSpec::new(
            Mark::Heatmap,
            vec![
                Encoding::new("a", SemanticType::Quantitative, Channel::X).with_bin(5),
                Encoding::new("b", SemanticType::Quantitative, Channel::Y).with_bin(5),
            ],
            vec![],
        );
        let out = process(&spec, &df, &opts()).unwrap();
        assert!(out.num_rows() <= 25);
        let total: i64 = (0..out.num_rows())
            .map(|i| out.value(i, "count").unwrap().as_f64().unwrap() as i64)
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn line_sorts_by_x() {
        let df = DataFrameBuilder::new()
            .datetime("date", ["2020-03-03", "2020-01-01", "2020-02-02"])
            .float("v", [3.0, 1.0, 2.0])
            .build()
            .unwrap();
        let spec = VisSpec::new(
            Mark::Line,
            vec![
                Encoding::new("date", SemanticType::Temporal, Channel::X),
                Encoding::new("v", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Mean),
            ],
            vec![],
        );
        let out = process(&spec, &df, &opts()).unwrap();
        assert_eq!(out.value(0, "v").unwrap(), Value::Float(1.0));
        assert_eq!(out.value(2, "v").unwrap(), Value::Float(3.0));
    }

    #[test]
    fn high_cardinality_temporal_line_is_resampled() {
        // 1000 distinct timestamps -> resampled into <= temporal_buckets points
        let base = 18_262i64 * 86_400;
        let dates: Vec<i64> = (0..1000).map(|i| base + i * 3600).collect();
        let df = DataFrame::from_columns(vec![
            (
                "when".to_string(),
                Column::DateTime(PrimitiveColumn::from_values(dates)),
            ),
            (
                "v".to_string(),
                Column::Float64(PrimitiveColumn::from_values(
                    (0..1000).map(|i| i as f64).collect(),
                )),
            ),
        ])
        .unwrap();
        let spec = VisSpec::new(
            Mark::Line,
            vec![
                Encoding::new("when", lux_engine::SemanticType::Temporal, Channel::X),
                Encoding::new("v", lux_engine::SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Mean),
            ],
            vec![],
        );
        let o = ProcessOptions {
            temporal_buckets: 40,
            ..ProcessOptions::default()
        };
        let out = process(&spec, &df, &o).unwrap();
        assert!(
            out.num_rows() <= 40,
            "expected resampling, got {} rows",
            out.num_rows()
        );
        assert!(out.num_rows() >= 20);
    }

    #[test]
    fn missing_encoding_errors() {
        let spec = VisSpec::new(Mark::Scatter, vec![], vec![]);
        assert!(process(&spec, &sample_df(), &opts()).is_err());
    }

    #[test]
    fn near_unique_bar_axis_is_cardinality_capped() {
        use lux_engine::governor::ResourceBudget;
        let df = DataFrameBuilder::new()
            .str("k", (0..500).map(|i| format!("k{i}")))
            .float("v", (0..500).map(|i| i as f64))
            .build()
            .unwrap();
        let spec = VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("k", SemanticType::Nominal, Channel::X),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![],
        );
        let gov = Arc::new(BudgetHandle::new(ResourceBudget::default()));
        let o = ProcessOptions {
            max_group_cardinality: 50,
            governor: Some(gov.clone()),
            ..opts()
        };
        let out = process(&spec, &df, &o).unwrap();
        assert!(out.num_rows() <= o.max_bars);
        // the fold is recorded and the "(other)" bar carries the overflow
        assert!(gov.event_count() >= 1, "no governor event for the cap");
        assert_eq!(out.value(0, "k").unwrap(), Value::str("(other)"));
        assert_eq!(out.value(0, "count").unwrap(), Value::Int(450));
    }

    #[test]
    fn memo_caches_exact_results_by_fingerprint() {
        let df = sample_df();
        let spec = VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("dept", SemanticType::Nominal, Channel::X),
                Encoding::new("pay", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Mean),
            ],
            vec![],
        );
        let o = ProcessOptions {
            memo: true,
            ..opts()
        };
        let first = process(&spec, &df, &o).unwrap();
        let k = memo::key(&spec, &o);
        assert!(
            memo::get(df.fingerprint(), &k).is_some(),
            "exact result was not cached"
        );
        let second = process(&spec, &df, &o).unwrap();
        assert_eq!(first.num_rows(), second.num_rows());
        assert_eq!(
            first.value(0, "dept").unwrap(),
            second.value(0, "dept").unwrap()
        );
        assert_eq!(
            first.value(0, "pay").unwrap(),
            second.value(0, "pay").unwrap()
        );
        // a fresh frame with identical data has a different fingerprint:
        // at worst a miss, never a wrong hit
        assert!(memo::get(sample_df().fingerprint(), &k).is_none());
    }

    #[test]
    fn memo_skips_degraded_results() {
        let df = DataFrameBuilder::new()
            .str("k", (0..500).map(|i| format!("k{i}")))
            .float("v", (0..500).map(|i| i as f64))
            .build()
            .unwrap();
        let spec = VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("k", SemanticType::Nominal, Channel::X),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![],
        );
        let gov = Arc::new(BudgetHandle::new(
            lux_engine::governor::ResourceBudget::default(),
        ));
        let o = ProcessOptions {
            max_group_cardinality: 50,
            governor: Some(gov.clone()),
            memo: true,
            ..opts()
        };
        process(&spec, &df, &o).unwrap();
        assert!(gov.event_count() >= 1, "expected a cap degradation");
        let k = memo::key(&spec, &o);
        assert!(
            memo::get(df.fingerprint(), &k).is_none(),
            "degraded result must not be cached"
        );
    }

    #[test]
    fn heatmap_survives_inf_values() {
        let df = DataFrameBuilder::new()
            .float("a", [f64::INFINITY, 1.0, 2.0, 3.0, f64::NEG_INFINITY])
            .float("b", [1.0, 2.0, f64::NAN, 4.0, 5.0])
            .build()
            .unwrap();
        let spec = VisSpec::new(
            Mark::Heatmap,
            vec![
                Encoding::new("a", SemanticType::Quantitative, Channel::X).with_bin(4),
                Encoding::new("b", SemanticType::Quantitative, Channel::Y).with_bin(4),
            ],
            vec![],
        );
        let out = process(&spec, &df, &opts()).unwrap();
        // only the two fully-finite rows land in cells, at finite coords
        let total: i64 = (0..out.num_rows())
            .map(|i| out.value(i, "count").unwrap().as_f64().unwrap() as i64)
            .sum();
        assert_eq!(total, 2);
        for i in 0..out.num_rows() {
            assert!(out.value(i, "a").unwrap().as_f64().unwrap().is_finite());
            assert!(out.value(i, "b").unwrap().as_f64().unwrap().is_finite());
        }
    }
}
