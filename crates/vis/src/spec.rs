//! Complete visualization specifications.
//!
//! A [`VisSpec`] is the output of intent compilation: every detail needed to
//! process and render one visualization — mark, channel encodings (with
//! aggregation/binning transforms), and filters. It corresponds to the
//! paper's fully-compiled `Vis` (§7.1.2 after Expand/Lookup/Infer).

use std::fmt;

use lux_dataframe::prelude::*;
use lux_engine::{OpClass, SemanticType};

/// The mark (chart) types Lux produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mark {
    Bar,
    Line,
    Scatter,
    Histogram,
    Heatmap,
    /// Choropleth map for geographic attributes. Rendered headlessly as a
    /// region -> value table (frontend drawing is out of scope, as in the
    /// paper's measurements which exclude drawing time).
    Choropleth,
}

impl Mark {
    pub fn name(self) -> &'static str {
        match self {
            Mark::Bar => "bar",
            Mark::Line => "line",
            Mark::Scatter => "scatter",
            Mark::Histogram => "histogram",
            Mark::Heatmap => "heatmap",
            Mark::Choropleth => "choropleth",
        }
    }
}

impl fmt::Display for Mark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The visual channel an attribute maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    X,
    Y,
    Color,
}

impl Channel {
    pub fn name(self) -> &'static str {
        match self {
            Channel::X => "x",
            Channel::Y => "y",
            Channel::Color => "color",
        }
    }

    /// Parse channel names accepted in intent clauses.
    pub fn parse(s: &str) -> Option<Channel> {
        match s.to_ascii_lowercase().as_str() {
            "x" => Some(Channel::X),
            "y" => Some(Channel::Y),
            "color" | "colour" => Some(Channel::Color),
            _ => None,
        }
    }
}

/// One attribute mapped to one channel, with optional transforms.
#[derive(Debug, Clone, PartialEq)]
pub struct Encoding {
    pub attribute: String,
    pub semantic: SemanticType,
    pub channel: Channel,
    /// Aggregation applied to this attribute (measures only).
    pub aggregation: Option<Agg>,
    /// Bin count when the attribute is binned (histograms/heatmaps).
    pub bin: Option<usize>,
    /// Synthetic encodings carry values computed by processing (e.g. the
    /// `count` axis of a histogram) rather than a source column.
    pub synthetic: bool,
}

impl Encoding {
    pub fn new(attribute: impl Into<String>, semantic: SemanticType, channel: Channel) -> Encoding {
        Encoding {
            attribute: attribute.into(),
            semantic,
            channel,
            aggregation: None,
            bin: None,
            synthetic: false,
        }
    }

    pub fn with_aggregation(mut self, agg: Agg) -> Encoding {
        self.aggregation = Some(agg);
        self
    }

    pub fn with_bin(mut self, bins: usize) -> Encoding {
        self.bin = Some(bins);
        self
    }

    pub fn synthetic_count(channel: Channel) -> Encoding {
        Encoding {
            attribute: "count".into(),
            semantic: SemanticType::Quantitative,
            channel,
            aggregation: Some(Agg::Count),
            bin: None,
            synthetic: true,
        }
    }
}

/// A concrete filter applied before processing.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterSpec {
    pub attribute: String,
    pub op: FilterOp,
    pub value: Value,
}

impl FilterSpec {
    pub fn new(attribute: impl Into<String>, op: FilterOp, value: Value) -> FilterSpec {
        FilterSpec {
            attribute: attribute.into(),
            op,
            value,
        }
    }
}

impl fmt::Display for FilterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attribute, self.op, self.value)
    }
}

/// A complete visualization specification.
#[derive(Debug, Clone, PartialEq)]
pub struct VisSpec {
    pub mark: Mark,
    pub encodings: Vec<Encoding>,
    pub filters: Vec<FilterSpec>,
}

impl VisSpec {
    pub fn new(mark: Mark, encodings: Vec<Encoding>, filters: Vec<FilterSpec>) -> VisSpec {
        VisSpec {
            mark,
            encodings,
            filters,
        }
    }

    /// The encoding on a given channel, if any.
    pub fn channel(&self, channel: Channel) -> Option<&Encoding> {
        self.encodings.iter().find(|e| e.channel == channel)
    }

    /// Non-synthetic attributes referenced by this spec (encodings first,
    /// then filters), deduplicated in order.
    pub fn attributes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for e in &self.encodings {
            if !e.synthetic && !out.contains(&e.attribute.as_str()) {
                out.push(&e.attribute);
            }
        }
        for f in &self.filters {
            if !out.contains(&f.attribute.as_str()) {
                out.push(&f.attribute);
            }
        }
        out
    }

    /// The primary relational operation class (Table 2), used by the cost
    /// model.
    pub fn op_class(&self) -> OpClass {
        let has_color = self.channel(Channel::Color).is_some();
        match self.mark {
            Mark::Scatter => {
                if has_color {
                    OpClass::Selection3
                } else {
                    OpClass::Selection2
                }
            }
            Mark::Bar | Mark::Line | Mark::Choropleth => {
                if has_color {
                    OpClass::GroupAgg2D
                } else {
                    OpClass::GroupAgg
                }
            }
            Mark::Histogram => OpClass::BinCount,
            Mark::Heatmap => {
                if has_color {
                    OpClass::BinCount2DGroup
                } else {
                    OpClass::BinCount2D
                }
            }
        }
    }

    /// Stable serialization of every field that affects processing, used to
    /// key the processed-vis memo cache. Unlike [`VisSpec::describe`] (a
    /// human-readable title), this includes channels, bin counts, semantic
    /// types, and synthetic markers, so two specs share a key only when
    /// processing them is guaranteed to produce the same result.
    pub fn cache_key(&self) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(64);
        let _ = write!(s, "m={};", self.mark.name());
        for e in &self.encodings {
            let _ = write!(
                s,
                "e={}|{:?}|{}|{:?}|{:?}|{};",
                e.attribute,
                e.semantic,
                e.channel.name(),
                e.aggregation,
                e.bin,
                e.synthetic
            );
        }
        for f in &self.filters {
            let _ = write!(s, "f={}|{}|{:?};", f.attribute, f.op, f.value);
        }
        s
    }

    /// Human-readable one-line description, used as chart title.
    pub fn describe(&self) -> String {
        let enc: Vec<String> = self
            .encodings
            .iter()
            .filter(|e| !e.synthetic)
            .map(|e| match e.aggregation {
                Some(agg) => format!("{}({})", agg, e.attribute),
                None => e.attribute.clone(),
            })
            .collect();
        let mut s = format!("{} of {}", self.mark, enc.join(" vs "));
        if !self.filters.is_empty() {
            let fs: Vec<String> = self.filters.iter().map(|f| f.to_string()).collect();
            s.push_str(&format!(" | {}", fs.join(", ")));
        }
        s
    }
}

impl fmt::Display for VisSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(with_color: bool) -> VisSpec {
        let mut encs = vec![
            Encoding::new("a", SemanticType::Quantitative, Channel::X),
            Encoding::new("b", SemanticType::Quantitative, Channel::Y),
        ];
        if with_color {
            encs.push(Encoding::new("c", SemanticType::Nominal, Channel::Color));
        }
        VisSpec::new(Mark::Scatter, encs, vec![])
    }

    #[test]
    fn op_class_mapping_matches_table2() {
        assert_eq!(scatter(false).op_class(), OpClass::Selection2);
        assert_eq!(scatter(true).op_class(), OpClass::Selection3);
        let bar = VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("g", SemanticType::Nominal, Channel::X),
                Encoding::new("v", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Mean),
            ],
            vec![],
        );
        assert_eq!(bar.op_class(), OpClass::GroupAgg);
        let hist = VisSpec::new(
            Mark::Histogram,
            vec![
                Encoding::new("v", SemanticType::Quantitative, Channel::X).with_bin(10),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![],
        );
        assert_eq!(hist.op_class(), OpClass::BinCount);
        let heat = VisSpec::new(
            Mark::Heatmap,
            vec![
                Encoding::new("a", SemanticType::Quantitative, Channel::X).with_bin(10),
                Encoding::new("b", SemanticType::Quantitative, Channel::Y).with_bin(10),
            ],
            vec![],
        );
        assert_eq!(heat.op_class(), OpClass::BinCount2D);
    }

    #[test]
    fn attributes_deduplicated_and_exclude_synthetic() {
        let spec = VisSpec::new(
            Mark::Histogram,
            vec![
                Encoding::new("v", SemanticType::Quantitative, Channel::X).with_bin(10),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![FilterSpec::new("v", FilterOp::Gt, Value::Int(0))],
        );
        assert_eq!(spec.attributes(), vec!["v"]);
    }

    #[test]
    fn describe_mentions_agg_and_filter() {
        let spec = VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("dept", SemanticType::Nominal, Channel::X),
                Encoding::new("pay", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Mean),
            ],
            vec![FilterSpec::new("country", FilterOp::Eq, Value::str("USA"))],
        );
        let d = spec.describe();
        assert!(d.contains("mean(pay)"));
        assert!(d.contains("country = USA"));
    }

    #[test]
    fn channel_lookup_and_parse() {
        let s = scatter(true);
        assert_eq!(s.channel(Channel::Color).unwrap().attribute, "c");
        assert_eq!(Channel::parse("COLOR"), Some(Channel::Color));
        assert_eq!(Channel::parse("z"), None);
    }
}
