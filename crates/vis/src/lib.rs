//! # lux-vis
//!
//! The visualization model of the Lux reproduction: complete specifications
//! ([`spec::VisSpec`]), the relational data processing of the paper's
//! Table 2 ([`data`]), containers with scores ([`vislist`]), and headless
//! renderers ([`render`]) for Vega-Lite JSON, terminal charts, and
//! export-to-code.

pub mod data;
pub mod render;
pub mod spec;
pub mod sql;
pub mod vislist;

pub use data::{process, Backend, ProcessOptions};
pub use spec::{Channel, Encoding, FilterSpec, Mark, VisSpec};
pub use sql::{process_sql, to_sql};
pub use vislist::{Vis, VisList};
