//! Headless renderers.
//!
//! The paper's measurements exclude frontend drawing time, and its export
//! feature turns widget selections into visualization *code*. We mirror both:
//! [`vega`] emits Vega-Lite JSON (the declarative target Lux compiles to via
//! Altair), [`ascii`] draws terminal charts for the examples, and [`code`]
//! exports a `Vis` back to reconstructable Rust source (the paper's
//! "export as code" workflow from §3).

pub mod ascii;
pub mod code;
pub mod imperative;
pub mod vega;
