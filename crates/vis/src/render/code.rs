//! Export a visualization back to source code (the paper's §3 workflow:
//! "print it as code, following which she can tweak the plotting style").
//!
//! [`to_rust_code`] emits a self-contained Rust snippet that reconstructs
//! the `Vis` against a dataframe named `df`; [`super::vega`] covers the
//! declarative-JSON export path.

use crate::spec::{Channel, VisSpec};
use crate::vislist::Vis;
use lux_dataframe::prelude::*;

fn value_literal(v: &Value) -> String {
    match v {
        Value::Null => "Value::Null".to_string(),
        Value::Int(x) => format!("Value::Int({x})"),
        Value::Float(x) => format!("Value::Float({x:?})"),
        Value::Bool(b) => format!("Value::Bool({b})"),
        Value::Str(s) => format!("Value::str({:?})", s.as_ref()),
        Value::DateTime(x) => format!("Value::DateTime({x})"),
    }
}

fn filter_op_literal(op: FilterOp) -> &'static str {
    match op {
        FilterOp::Eq => "FilterOp::Eq",
        FilterOp::Ne => "FilterOp::Ne",
        FilterOp::Gt => "FilterOp::Gt",
        FilterOp::Lt => "FilterOp::Lt",
        FilterOp::Ge => "FilterOp::Ge",
        FilterOp::Le => "FilterOp::Le",
    }
}

/// Emit Rust code that rebuilds `spec` via the intent API and renders it.
pub fn to_rust_code(spec: &VisSpec) -> String {
    let mut lines = vec!["// Exported from the Lux widget. `df` is your LuxDataFrame.".to_string()];
    let mut clause_names = Vec::new();
    for (i, e) in spec.encodings.iter().enumerate() {
        if e.synthetic {
            continue;
        }
        let var = format!("axis{i}");
        let mut build = format!("let {var} = Clause::axis({:?})", e.attribute);
        if e.channel != Channel::Y || e.aggregation.is_none() {
            build.push_str(&format!(".on_channel(Channel::{:?})", e.channel));
        }
        if let Some(agg) = e.aggregation {
            build.push_str(&format!(".aggregate(Agg::{})", agg_variant(agg)));
        }
        if let Some(bins) = e.bin {
            build.push_str(&format!(".bin({bins})"));
        }
        build.push(';');
        lines.push(build);
        clause_names.push(var);
    }
    for (i, f) in spec.filters.iter().enumerate() {
        let var = format!("filter{i}");
        lines.push(format!(
            "let {var} = Clause::filter({:?}, {}, {});",
            f.attribute,
            filter_op_literal(f.op),
            value_literal(&f.value)
        ));
        clause_names.push(var);
    }
    lines.push(format!(
        "let vis = Vis::new(vec![{}], &df)?;",
        clause_names.join(", ")
    ));
    lines.push("println!(\"{}\", vis.render_ascii());".to_string());
    lines.join("\n")
}

/// Emit code for a [`Vis`] (same as its spec).
pub fn vis_to_rust_code(vis: &Vis) -> String {
    to_rust_code(&vis.spec)
}

fn agg_variant(agg: Agg) -> &'static str {
    match agg {
        Agg::Count => "Count",
        Agg::Sum => "Sum",
        Agg::Mean => "Mean",
        Agg::Min => "Min",
        Agg::Max => "Max",
        Agg::Var => "Var",
        Agg::Std => "Std",
        Agg::Median => "Median",
        Agg::First => "First",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Encoding, FilterSpec, Mark};
    use lux_engine::SemanticType;

    #[test]
    fn exports_axes_filters_and_transforms() {
        let spec = VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("dept", SemanticType::Nominal, Channel::X),
                Encoding::new("pay", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Var),
            ],
            vec![FilterSpec::new("country", FilterOp::Eq, Value::str("USA"))],
        );
        let code = to_rust_code(&spec);
        assert!(code.contains("Clause::axis(\"dept\")"));
        assert!(code.contains("Agg::Var"));
        assert!(code.contains("Clause::filter(\"country\", FilterOp::Eq, Value::str(\"USA\"))"));
        assert!(code.contains("Vis::new(vec![axis0, axis1, filter0], &df)?"));
    }

    #[test]
    fn synthetic_encodings_are_skipped() {
        let spec = VisSpec::new(
            Mark::Histogram,
            vec![
                Encoding::new("v", SemanticType::Quantitative, Channel::X).with_bin(10),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![],
        );
        let code = to_rust_code(&spec);
        assert!(!code.contains("\"count\""));
        assert!(code.contains(".bin(10)"));
    }
}
