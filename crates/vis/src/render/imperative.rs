//! An imperative plotting API — the matplotlib-style *baseline* of the
//! paper's Figure 6.
//!
//! Figure 6 compares the specification burden for Q3 ("compare average Age
//! across Education levels") between Lux's one-line intent and conventional
//! libraries where the user must (1) wrangle the data themselves and
//! (2) spell out every visual detail. This module implements that
//! conventional style faithfully — `Figure::new()`, manual `bar(xs, ys)`,
//! explicit labels/ticks — so the comparison harness (`fig6_specification`)
//! measures real code against real code. It doubles as an escape hatch for
//! users who want full manual control (paper §2: Lux "is built on top of
//! these imperative and declarative frameworks").

use lux_dataframe::prelude::*;

/// Manual mark payloads, positioned by the caller — the defining property
/// of the imperative style ("users manually compute the data associated
/// with the graphical elements").
#[derive(Debug, Clone)]
enum Layer {
    Bar {
        labels: Vec<String>,
        heights: Vec<f64>,
    },
    Scatter {
        xs: Vec<f64>,
        ys: Vec<f64>,
    },
    Line {
        xs: Vec<f64>,
        ys: Vec<f64>,
    },
}

/// An imperative figure under construction.
#[derive(Debug, Clone, Default)]
pub struct Figure {
    layers: Vec<Layer>,
    title: Option<String>,
    xlabel: Option<String>,
    ylabel: Option<String>,
}

impl Figure {
    pub fn new() -> Figure {
        Figure::default()
    }

    /// Add a bar layer. `labels` and `heights` must be the same length —
    /// the caller has already aggregated the data.
    pub fn bar(mut self, labels: Vec<String>, heights: Vec<f64>) -> Result<Figure> {
        if labels.len() != heights.len() {
            return Err(Error::LengthMismatch {
                expected: labels.len(),
                got: heights.len(),
            });
        }
        self.layers.push(Layer::Bar { labels, heights });
        Ok(self)
    }

    /// Add a scatter layer from raw coordinates.
    pub fn scatter(mut self, xs: Vec<f64>, ys: Vec<f64>) -> Result<Figure> {
        if xs.len() != ys.len() {
            return Err(Error::LengthMismatch {
                expected: xs.len(),
                got: ys.len(),
            });
        }
        self.layers.push(Layer::Scatter { xs, ys });
        Ok(self)
    }

    /// Add a line layer from raw coordinates (sorted by the caller).
    pub fn line(mut self, xs: Vec<f64>, ys: Vec<f64>) -> Result<Figure> {
        if xs.len() != ys.len() {
            return Err(Error::LengthMismatch {
                expected: xs.len(),
                got: ys.len(),
            });
        }
        self.layers.push(Layer::Line { xs, ys });
        Ok(self)
    }

    pub fn title(mut self, t: impl Into<String>) -> Figure {
        self.title = Some(t.into());
        self
    }

    pub fn xlabel(mut self, l: impl Into<String>) -> Figure {
        self.xlabel = Some(l.into());
        self
    }

    pub fn ylabel(mut self, l: impl Into<String>) -> Figure {
        self.ylabel = Some(l.into());
        self
    }

    /// Render to terminal text (the `plt.show()` analogue).
    pub fn show(&self) -> String {
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(&format!("── {t} ──\n"));
        }
        for layer in &self.layers {
            match layer {
                Layer::Bar { labels, heights } => {
                    let max = heights.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
                    let w = labels.iter().map(String::len).max().unwrap_or(1);
                    for (l, h) in labels.iter().zip(heights) {
                        let n = ((h / max).max(0.0) * 40.0).round() as usize;
                        out.push_str(&format!("{l:>w$} | {} {h:.2}\n", "█".repeat(n)));
                    }
                }
                Layer::Scatter { xs, ys } | Layer::Line { xs, ys } => {
                    out.push_str(&format!("({} points)\n", xs.len().min(ys.len())));
                }
            }
        }
        match (&self.xlabel, &self.ylabel) {
            (Some(x), Some(y)) => out.push_str(&format!("x: {x}  y: {y}\n")),
            (Some(x), None) => out.push_str(&format!("x: {x}\n")),
            (None, Some(y)) => out.push_str(&format!("y: {y}\n")),
            (None, None) => {}
        }
        out
    }

    /// Number of explicit specification calls the user made (layers +
    /// labels + title) — the quantitative burden Figure 6 compares.
    pub fn specification_calls(&self) -> usize {
        self.layers.len()
            + usize::from(self.title.is_some())
            + usize::from(self.xlabel.is_some())
            + usize::from(self.ylabel.is_some())
    }
}

/// The full imperative workflow for the paper's Q3, exactly as a matplotlib
/// user would write it: manual group-by, manual mean, manual chart assembly.
/// Returns the rendered figure (used by the Figure-6 harness and tests).
pub fn q3_imperative(df: &DataFrame) -> Result<String> {
    // 1. wrangle: group Age by Education and compute the mean by hand
    let grouped = df.groupby(&["Education"])?.agg(&[("Age", Agg::Mean)])?;
    let mut labels = Vec::new();
    let mut heights = Vec::new();
    for i in 0..grouped.num_rows() {
        labels.push(grouped.value(i, "Education")?.to_string());
        heights.push(grouped.value(i, "Age")?.as_f64().unwrap_or(0.0));
    }
    // 2. specify: every visual element, explicitly
    let fig = Figure::new()
        .bar(labels, heights)?
        .title("Average Age by Education")
        .xlabel("Education")
        .ylabel("mean(Age)");
    Ok(fig.show())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrameBuilder::new()
            .float("Age", [25.0, 35.0, 45.0, 55.0])
            .str("Education", ["BS", "BS", "MS", "MS"])
            .build()
            .unwrap()
    }

    #[test]
    fn q3_imperative_produces_bar_chart() {
        let out = q3_imperative(&df()).unwrap();
        assert!(out.contains("Average Age by Education"));
        assert!(out.contains('█'));
        assert!(out.contains("mean(Age)"));
    }

    #[test]
    fn figure_validates_lengths() {
        assert!(Figure::new().bar(vec!["a".into()], vec![1.0, 2.0]).is_err());
        assert!(Figure::new().scatter(vec![1.0], vec![]).is_err());
        assert!(Figure::new().line(vec![1.0], vec![2.0]).is_ok());
    }

    #[test]
    fn specification_calls_counted() {
        let fig = Figure::new()
            .bar(vec!["a".into()], vec![1.0])
            .unwrap()
            .title("t")
            .xlabel("x")
            .ylabel("y");
        assert_eq!(fig.specification_calls(), 4);
    }

    #[test]
    fn show_renders_scatter_count_and_labels() {
        let fig = Figure::new()
            .scatter(vec![1.0, 2.0], vec![3.0, 4.0])
            .unwrap()
            .xlabel("a");
        let s = fig.show();
        assert!(s.contains("(2 points)"));
        assert!(s.contains("x: a"));
    }
}
