//! Vega-Lite JSON emission.
//!
//! A hand-rolled emitter (the JSON surface is small and write-only, so we
//! avoid a serde dependency). The output follows the Vega-Lite v5 shape that
//! Lux's Altair renderer produces: `mark`, `encoding` with field/type/
//! aggregate/bin, and inline `data.values`.

use lux_dataframe::prelude::*;
use lux_engine::SemanticType;

use crate::spec::{Channel, Encoding, Mark, VisSpec};
use crate::vislist::Vis;

/// Escape a string for JSON.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Int(x) => x.to_string(),
        Value::Float(x) => {
            if x.is_finite() {
                x.to_string()
            } else {
                "null".to_string()
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => format!("\"{}\"", esc(s)),
        Value::DateTime(_) => format!("\"{}\"", esc(&v.to_string())),
    }
}

fn vega_type(s: SemanticType) -> &'static str {
    match s {
        SemanticType::Quantitative => "quantitative",
        SemanticType::Nominal | SemanticType::Id => "nominal",
        SemanticType::Temporal => "temporal",
        SemanticType::Geographic => "nominal",
    }
}

fn vega_mark(m: Mark) -> &'static str {
    match m {
        Mark::Bar | Mark::Histogram => "bar",
        Mark::Line => "line",
        Mark::Scatter => "circle",
        Mark::Heatmap => "rect",
        Mark::Choropleth => "geoshape",
    }
}

fn encoding_json(e: &Encoding) -> String {
    let mut parts = vec![
        format!("\"field\": \"{}\"", esc(&e.attribute)),
        format!("\"type\": \"{}\"", vega_type(e.semantic)),
    ];
    if let Some(agg) = e.aggregation {
        if !e.synthetic {
            parts.push(format!("\"aggregate\": \"{}\"", agg.name()));
        }
    }
    if e.bin.is_some() {
        parts.push("\"bin\": {\"binned\": true}".to_string());
    }
    format!("{{{}}}", parts.join(", "))
}

/// Emit the full Vega-Lite spec for a processed [`Vis`]. Data values come
/// from the processed frame; an unprocessed vis gets an empty data array.
pub fn to_vega_lite(vis: &Vis) -> String {
    let spec = &vis.spec;
    let mut enc_parts: Vec<String> = Vec::new();
    for channel in [Channel::X, Channel::Y, Channel::Color] {
        if let Some(e) = spec.channel(channel) {
            enc_parts.push(format!("\"{}\": {}", channel.name(), encoding_json(e)));
        }
    }

    let values = match &vis.data {
        Some(df) => data_values_json(df),
        None => "[]".to_string(),
    };

    format!(
        "{{\n  \"$schema\": \"https://vega.github.io/schema/vega-lite/v5.json\",\n  \"title\": \"{}\",\n  \"mark\": \"{}\",\n  \"encoding\": {{{}}},\n  \"data\": {{\"values\": {}}}\n}}",
        esc(&vis.title()),
        vega_mark(spec.mark),
        enc_parts.join(", "),
        values
    )
}

/// The spec without data (for tests and diffing).
pub fn to_vega_lite_spec_only(spec: &VisSpec) -> String {
    to_vega_lite(&Vis::new(spec.clone()))
}

fn data_values_json(df: &DataFrame) -> String {
    let names = df.column_names();
    let mut rows = Vec::with_capacity(df.num_rows());
    for r in 0..df.num_rows() {
        let fields: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(c, n)| format!("\"{}\": {}", esc(n), json_value(&df.column_at(c).value(r))))
            .collect();
        rows.push(format!("{{{}}}", fields.join(", ")));
    }
    format!("[{}]", rows.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ProcessOptions;

    fn vis() -> Vis {
        let spec = VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("dept", SemanticType::Nominal, Channel::X),
                Encoding::new("pay", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Mean),
            ],
            vec![],
        );
        Vis::new(spec)
    }

    #[test]
    fn spec_only_has_mark_and_encoding() {
        let json = to_vega_lite_spec_only(&vis().spec);
        assert!(json.contains("\"mark\": \"bar\""));
        assert!(json.contains("\"field\": \"dept\""));
        assert!(json.contains("\"aggregate\": \"mean\""));
        assert!(json.contains("\"values\": []"));
    }

    #[test]
    fn processed_vis_embeds_data() {
        let df = DataFrameBuilder::new()
            .str("dept", ["A", "B"])
            .float("pay", [1.0, 2.0])
            .build()
            .unwrap();
        let mut v = vis();
        v.process(&df, &ProcessOptions::default()).unwrap();
        let json = to_vega_lite(&v);
        assert!(json.contains("\"dept\": \"B\""));
        assert!(json.contains("\"pay\": 2"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_value(&Value::str("x\"y")), "\"x\\\"y\"");
        assert_eq!(json_value(&Value::Float(f64::NAN)), "null");
        assert_eq!(json_value(&Value::Null), "null");
    }

    #[test]
    fn json_is_balanced() {
        let json = to_vega_lite_spec_only(&vis().spec);
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
