//! Terminal chart rendering for the examples and the "widget" display.
//!
//! Bar charts, histograms, line charts (as sparklines per series), scatter
//! plots (as a dot grid), and choropleths (as a labeled value table) — enough
//! to make `print()` output genuinely inspectable in a terminal.

use lux_dataframe::prelude::*;

use crate::spec::{Channel, Mark};
use crate::vislist::Vis;

const BAR_WIDTH: usize = 40;
const GRID_W: usize = 50;
const GRID_H: usize = 14;

/// Render a processed [`Vis`] as text. Unprocessed visualizations render as
/// their title only.
pub fn render(vis: &Vis) -> String {
    let mut out = format!("── {} ──\n", vis.title());
    let Some(df) = &vis.data else {
        out.push_str("(not processed)\n");
        return out;
    };
    match vis.spec.mark {
        Mark::Bar | Mark::Choropleth => out.push_str(&bar_chart(vis, df)),
        Mark::Histogram => out.push_str(&histogram(vis, df)),
        Mark::Line => out.push_str(&line_chart(vis, df)),
        Mark::Scatter => out.push_str(&scatter(vis, df)),
        Mark::Heatmap => out.push_str(&heatmap(df)),
    }
    out
}

fn y_column(vis: &Vis, df: &DataFrame) -> String {
    vis.spec
        .channel(Channel::Y)
        .map(|e| e.attribute.clone())
        .filter(|a| df.has_column(a))
        .unwrap_or_else(|| "count".to_string())
}

/// Glyphs used to distinguish color-channel groups in grouped bar charts.
const GROUP_GLYPHS: [char; 6] = ['█', '▓', '▒', '░', '◆', '●'];

fn bar_chart(vis: &Vis, df: &DataFrame) -> String {
    let x = match vis.spec.channel(Channel::X) {
        Some(e) => e.attribute.clone(),
        None => return "(no x encoding)\n".to_string(),
    };
    let y = y_column(vis, df);
    let (Ok(xcol), Ok(ycol)) = (df.column(&x), df.column(&y)) else {
        return "(missing columns)\n".to_string();
    };
    let max = (0..df.num_rows())
        .filter_map(|i| ycol.f64_at(i))
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let label_w = (0..df.num_rows())
        .map(|i| xcol.value(i).to_string().len())
        .max()
        .unwrap_or(1)
        .min(24);

    // Grouped rendering when a (non-synthetic) color column is present in
    // the processed data: per-group glyphs plus a legend line.
    let color_col = vis
        .spec
        .channel(Channel::Color)
        .filter(|e| !e.synthetic && e.attribute != x)
        .and_then(|e| {
            df.column(&e.attribute)
                .ok()
                .map(|c| (e.attribute.clone(), c))
        });

    let mut out = String::new();
    match color_col {
        Some((color_name, ccol)) => {
            // stable glyph per distinct color value, in first-seen order
            let mut legend: Vec<String> = Vec::new();
            let glyph_of = |legend: &mut Vec<String>, v: &str| -> char {
                let idx = match legend.iter().position(|l| l == v) {
                    Some(i) => i,
                    None => {
                        legend.push(v.to_string());
                        legend.len() - 1
                    }
                };
                GROUP_GLYPHS[idx % GROUP_GLYPHS.len()]
            };
            for i in 0..df.num_rows() {
                let label = truncate(&xcol.value(i).to_string(), label_w);
                let group = ccol.value(i).to_string();
                let glyph = glyph_of(&mut legend, &group);
                let v = ycol.f64_at(i).unwrap_or(0.0);
                let n = ((v / max).max(0.0) * BAR_WIDTH as f64).round() as usize;
                out.push_str(&format!(
                    "{label:>label_w$} | {} {v:.2}\n",
                    glyph.to_string().repeat(n)
                ));
            }
            let entries: Vec<String> = legend
                .iter()
                .enumerate()
                .map(|(i, l)| format!("{} {l}", GROUP_GLYPHS[i % GROUP_GLYPHS.len()]))
                .collect();
            out.push_str(&format!("{color_name}: {}\n", entries.join("  ")));
        }
        None => {
            for i in 0..df.num_rows() {
                let label = truncate(&xcol.value(i).to_string(), label_w);
                let v = ycol.f64_at(i).unwrap_or(0.0);
                let n = ((v / max).max(0.0) * BAR_WIDTH as f64).round() as usize;
                out.push_str(&format!("{label:>label_w$} | {} {v:.2}\n", "█".repeat(n)));
            }
        }
    }
    out
}

fn histogram(vis: &Vis, df: &DataFrame) -> String {
    let x = match vis.spec.channel(Channel::X) {
        Some(e) => e.attribute.clone(),
        None => return "(no x encoding)\n".to_string(),
    };
    let (Ok(xcol), Ok(ycol)) = (df.column(&x), df.column("count")) else {
        return "(missing columns)\n".to_string();
    };
    let max = (0..df.num_rows())
        .filter_map(|i| ycol.f64_at(i))
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let mut out = String::new();
    for i in 0..df.num_rows() {
        let start = xcol.f64_at(i).unwrap_or(0.0);
        let v = ycol.f64_at(i).unwrap_or(0.0);
        let n = ((v / max) * BAR_WIDTH as f64).round() as usize;
        out.push_str(&format!("{start:>10.2} | {} {v:.0}\n", "▇".repeat(n)));
    }
    out
}

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn line_chart(vis: &Vis, df: &DataFrame) -> String {
    let y = y_column(vis, df);
    let Ok(ycol) = df.column(&y) else {
        return "(missing y column)\n".to_string();
    };
    let vals: Vec<f64> = (0..df.num_rows()).filter_map(|i| ycol.f64_at(i)).collect();
    if vals.is_empty() {
        return "(no data)\n".to_string();
    }
    let (lo, hi) = vals
        .iter()
        .fold((f64::MAX, f64::MIN), |(a, b), &v| (a.min(v), b.max(v)));
    let span = (hi - lo).max(1e-12);
    let spark: String = vals
        .iter()
        .map(|&v| SPARK[(((v - lo) / span) * 7.0).round() as usize])
        .collect();
    format!("{spark}\nmin={lo:.2} max={hi:.2} n={}\n", vals.len())
}

fn scatter(vis: &Vis, df: &DataFrame) -> String {
    let (Some(xe), Some(ye)) = (vis.spec.channel(Channel::X), vis.spec.channel(Channel::Y)) else {
        return "(missing encodings)\n".to_string();
    };
    let (Ok(xcol), Ok(ycol)) = (df.column(&xe.attribute), df.column(&ye.attribute)) else {
        return "(missing columns)\n".to_string();
    };
    let pts: Vec<(f64, f64)> = (0..df.num_rows())
        .filter_map(|i| Some((xcol.f64_at(i)?, ycol.f64_at(i)?)))
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .collect();
    if pts.is_empty() {
        return "(no data)\n".to_string();
    }
    let (xlo, xhi) = pts
        .iter()
        .fold((f64::MAX, f64::MIN), |(a, b), p| (a.min(p.0), b.max(p.0)));
    let (ylo, yhi) = pts
        .iter()
        .fold((f64::MAX, f64::MIN), |(a, b), p| (a.min(p.1), b.max(p.1)));
    let xs = (xhi - xlo).max(1e-12);
    let ys = (yhi - ylo).max(1e-12);
    let mut grid = vec![vec![' '; GRID_W]; GRID_H];
    for (x, y) in &pts {
        let cx = (((x - xlo) / xs) * (GRID_W - 1) as f64) as usize;
        let cy = (((y - ylo) / ys) * (GRID_H - 1) as f64) as usize;
        grid[GRID_H - 1 - cy][cx] = '•';
    }
    let mut out = String::new();
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!(
        "x: {} [{xlo:.2}, {xhi:.2}]  y: {} [{ylo:.2}, {yhi:.2}]  n={}\n",
        xe.attribute,
        ye.attribute,
        pts.len()
    ));
    out
}

fn heatmap(df: &DataFrame) -> String {
    // Processed heatmap frames are (x, y, count[, mean_*]) triples; render
    // the count magnitude per cell as shade characters.
    let Ok(ncol) = df.column("count") else {
        return "(missing count column)\n".to_string();
    };
    let max = (0..df.num_rows())
        .filter_map(|i| ncol.f64_at(i))
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    const SHADES: [char; 5] = ['░', '▒', '▓', '█', '█'];
    let mut out = String::new();
    for i in 0..df.num_rows().min(60) {
        let v = ncol.f64_at(i).unwrap_or(0.0);
        let shade = SHADES[(((v / max) * 4.0) as usize).min(4)];
        out.push(shade);
        if (i + 1) % 20 == 0 {
            out.push('\n');
        }
    }
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(&format!(
        "{} non-empty cells, max count {max:.0}\n",
        df.num_rows()
    ));
    out
}

fn truncate(s: &str, w: usize) -> String {
    if s.chars().count() <= w {
        s.to_string()
    } else {
        let cut: String = s.chars().take(w.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ProcessOptions;
    use crate::spec::{Encoding, Mark, VisSpec};
    use lux_engine::SemanticType;

    fn processed(mark: Mark, encs: Vec<Encoding>, df: &DataFrame) -> Vis {
        let mut v = Vis::new(VisSpec::new(mark, encs, vec![]));
        v.process(df, &ProcessOptions::default()).unwrap();
        v
    }

    #[test]
    fn bar_chart_renders_labels_and_bars() {
        let df = DataFrameBuilder::new()
            .str("dept", ["Sales", "Eng"])
            .float("pay", [2.0, 4.0])
            .build()
            .unwrap();
        let v = processed(
            Mark::Bar,
            vec![
                Encoding::new("dept", SemanticType::Nominal, Channel::X),
                Encoding::new("pay", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Mean),
            ],
            &df,
        );
        let s = render(&v);
        assert!(s.contains("Sales"));
        assert!(s.contains('█'));
    }

    #[test]
    fn grouped_bar_renders_legend() {
        let df = DataFrameBuilder::new()
            .str("dept", ["S", "S", "E", "E"])
            .str("level", ["jr", "sr", "jr", "sr"])
            .float("pay", [1.0, 2.0, 3.0, 4.0])
            .build()
            .unwrap();
        let v = processed(
            Mark::Bar,
            vec![
                Encoding::new("dept", SemanticType::Nominal, Channel::X),
                Encoding::new("pay", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Mean),
                Encoding::new("level", SemanticType::Nominal, Channel::Color),
            ],
            &df,
        );
        let s = render(&v);
        assert!(s.contains("level:"), "legend line expected: {s}");
        assert!(s.contains("jr") && s.contains("sr"));
        // at least two distinct glyphs used
        assert!(s.contains('█') && s.contains('▓'));
    }

    #[test]
    fn histogram_renders() {
        let df = DataFrameBuilder::new()
            .float("v", (0..50).map(|i| i as f64))
            .build()
            .unwrap();
        let v = processed(
            Mark::Histogram,
            vec![
                Encoding::new("v", SemanticType::Quantitative, Channel::X).with_bin(5),
                Encoding::synthetic_count(Channel::Y),
            ],
            &df,
        );
        let s = render(&v);
        assert!(s.contains('▇'));
    }

    #[test]
    fn scatter_renders_grid() {
        let df = DataFrameBuilder::new()
            .float("a", [0.0, 1.0, 2.0])
            .float("b", [0.0, 1.0, 4.0])
            .build()
            .unwrap();
        let v = processed(
            Mark::Scatter,
            vec![
                Encoding::new("a", SemanticType::Quantitative, Channel::X),
                Encoding::new("b", SemanticType::Quantitative, Channel::Y),
            ],
            &df,
        );
        let s = render(&v);
        assert!(s.contains('•'));
        assert!(s.contains("n=3"));
    }

    #[test]
    fn unprocessed_renders_placeholder() {
        let v = Vis::new(VisSpec::new(Mark::Bar, vec![], vec![]));
        assert!(render(&v).contains("not processed"));
    }

    #[test]
    fn line_renders_sparkline() {
        let df = DataFrameBuilder::new()
            .datetime("d", ["2020-01-01", "2020-01-02", "2020-01-03"])
            .float("v", [1.0, 3.0, 2.0])
            .build()
            .unwrap();
        let v = processed(
            Mark::Line,
            vec![
                Encoding::new("d", SemanticType::Temporal, Channel::X),
                Encoding::new("v", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Mean),
            ],
            &df,
        );
        let s = render(&v);
        assert!(s.contains("min=1.00"));
    }

    #[test]
    fn truncate_respects_width() {
        assert_eq!(truncate("short", 10), "short");
        assert_eq!(truncate("averylonglabel", 5), "aver…");
    }
}
