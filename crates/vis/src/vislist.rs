//! [`Vis`] and [`VisList`]: specifications paired with processed data and
//! interestingness scores (paper §4: "Each visualization, i.e., Vis, is an
//! intent operating on a specific dataframe instance; a collection of
//! visualizations is known as a VisList").

use lux_dataframe::prelude::*;

use crate::data::{process, ProcessOptions};
use crate::spec::VisSpec;

/// One visualization: a complete spec plus (once processed) its data and
/// (once ranked) its interestingness score.
#[derive(Debug, Clone)]
pub struct Vis {
    pub spec: VisSpec,
    /// The processed view data; `None` until [`Vis::process`] runs.
    pub data: Option<DataFrame>,
    /// Interestingness score assigned by an action's ranking function.
    pub score: f64,
    /// True when the score came from a sampled (approximate) pass.
    pub approximate: bool,
}

impl Vis {
    pub fn new(spec: VisSpec) -> Vis {
        Vis {
            spec,
            data: None,
            score: 0.0,
            approximate: false,
        }
    }

    /// Process this visualization's data against `df`.
    pub fn process(&mut self, df: &DataFrame, opts: &ProcessOptions) -> Result<()> {
        self.data = Some(process(&self.spec, df, opts)?);
        Ok(())
    }

    /// Chart title.
    pub fn title(&self) -> String {
        self.spec.describe()
    }
}

/// An ordered collection of visualizations.
#[derive(Debug, Clone, Default)]
pub struct VisList {
    pub visualizations: Vec<Vis>,
}

impl VisList {
    pub fn new(visualizations: Vec<Vis>) -> VisList {
        VisList { visualizations }
    }

    pub fn from_specs(specs: Vec<VisSpec>) -> VisList {
        VisList {
            visualizations: specs.into_iter().map(Vis::new).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.visualizations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.visualizations.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Vis> {
        self.visualizations.iter()
    }

    /// Sort by score descending (stable, so spec order breaks ties). NaN
    /// scores sort last deterministically — `partial_cmp` fallbacks would
    /// leave their position dependent on the sort's visit order.
    pub fn rank(&mut self) {
        self.visualizations
            .sort_by(|a, b| lux_engine::cmp_score_desc(a.score, b.score));
    }

    /// Keep the top `k` by current order.
    pub fn truncate(&mut self, k: usize) {
        self.visualizations.truncate(k);
    }

    /// Process every visualization's data; returns the first error, if any,
    /// after attempting all (a failing vis is dropped, mirroring the paper's
    /// fail-safe display behavior).
    pub fn process_all(&mut self, df: &DataFrame, opts: &ProcessOptions) -> usize {
        let mut dropped = 0;
        self.visualizations
            .retain_mut(|v| match v.process(df, opts) {
                Ok(()) => true,
                Err(_) => {
                    dropped += 1;
                    false
                }
            });
        dropped
    }
}

impl IntoIterator for VisList {
    type Item = Vis;
    type IntoIter = std::vec::IntoIter<Vis>;
    fn into_iter(self) -> Self::IntoIter {
        self.visualizations.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Channel, Encoding, Mark};
    use lux_engine::SemanticType;

    fn spec(x: &str, y: &str) -> VisSpec {
        VisSpec::new(
            Mark::Scatter,
            vec![
                Encoding::new(x, SemanticType::Quantitative, Channel::X),
                Encoding::new(y, SemanticType::Quantitative, Channel::Y),
            ],
            vec![],
        )
    }

    fn df() -> DataFrame {
        DataFrameBuilder::new()
            .float("a", [1.0, 2.0])
            .float("b", [3.0, 4.0])
            .build()
            .unwrap()
    }

    #[test]
    fn vis_process_fills_data() {
        let mut v = Vis::new(spec("a", "b"));
        assert!(v.data.is_none());
        v.process(&df(), &ProcessOptions::default()).unwrap();
        assert_eq!(v.data.as_ref().unwrap().num_rows(), 2);
    }

    #[test]
    fn rank_sorts_desc() {
        let mut list = VisList::from_specs(vec![spec("a", "b"), spec("b", "a")]);
        list.visualizations[0].score = 0.1;
        list.visualizations[1].score = 0.9;
        list.rank();
        assert_eq!(list.visualizations[0].score, 0.9);
    }

    #[test]
    fn rank_sorts_nan_last() {
        let mut list = VisList::from_specs(vec![spec("a", "b"), spec("b", "a"), spec("a", "b")]);
        list.visualizations[0].score = f64::NAN;
        list.visualizations[1].score = 0.3;
        list.visualizations[2].score = 0.7;
        list.rank();
        assert_eq!(list.visualizations[0].score, 0.7);
        assert_eq!(list.visualizations[1].score, 0.3);
        assert!(list.visualizations[2].score.is_nan());
    }

    #[test]
    fn process_all_drops_failing() {
        let mut list = VisList::from_specs(vec![spec("a", "b"), spec("nope", "b")]);
        let dropped = list.process_all(&df(), &ProcessOptions::default());
        assert_eq!(dropped, 1);
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn truncate_keeps_top() {
        let mut list = VisList::from_specs(vec![spec("a", "b"); 5]);
        list.truncate(2);
        assert_eq!(list.len(), 2);
    }
}
