//! SQL translation of visualization processing (paper §7: "the execution
//! engine performs the required data processing ... either as a series of
//! dataframe operations in pandas or equivalently in SQL queries in
//! relational databases").
//!
//! [`to_sql`] emits the Table-2 query for a complete [`VisSpec`] against a
//! table named `t`, and [`process_sql`] executes it through the in-crate
//! SQL engine — an alternative backend whose results match the native
//! processing in [`crate::data`] (verified by integration tests).

use std::sync::atomic::Ordering;
use std::time::Duration;

use lux_dataframe::prelude::*;
use lux_dataframe::sql::query_frame;
use lux_engine::admission::Backoff;
use lux_engine::trace::{names, MetricsRegistry};

use crate::data::ProcessOptions;
use crate::spec::{Channel, Mark, VisSpec};

/// Classify a backend error as transient (worth retrying) or permanent.
/// Permanent errors — bad SQL, unknown columns, type mismatches — will fail
/// identically on every attempt; transient ones (a busy/locked/timed-out
/// backend, a dropped connection, an injected `transient` fault) are the
/// relational-backend failure modes a bounded retry absorbs.
pub fn is_transient_error(e: &Error) -> bool {
    let msg = e.to_string().to_ascii_lowercase();
    [
        "transient",
        "busy",
        "locked",
        "timeout",
        "timed out",
        "connection",
    ]
    .iter()
    .any(|needle| msg.contains(needle))
}

/// Attempts per query (1 initial + bounded retries).
const SQL_MAX_ATTEMPTS: u32 = 3;

/// Run one backend query, retrying transient errors with jittered
/// exponential backoff (deterministically seeded from the query text).
/// Every retry is counted in `lux.sql.retries` and, when the caller
/// attached [`ProcessOptions::sql_attempts`], surfaced for span tagging.
fn query_with_retry(sql: &str, df: &DataFrame, opts: &ProcessOptions) -> Result<DataFrame> {
    let seed = sql.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    });
    let mut backoff = Backoff::new(Duration::from_millis(1), Duration::from_millis(16), seed);
    loop {
        match query_frame(sql, df) {
            Ok(out) => return Ok(out),
            Err(e) if is_transient_error(&e) && backoff.attempts() + 1 < SQL_MAX_ATTEMPTS => {
                MetricsRegistry::global().incr(names::SQL_RETRIES);
                if let Some(attempts) = &opts.sql_attempts {
                    attempts.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(backoff.next_delay());
            }
            Err(e) => return Err(e),
        }
    }
}

/// Quote an identifier for SQL.
fn ident(name: &str) -> String {
    format!("\"{}\"", name.replace('"', "\"\""))
}

/// Render a value as a SQL literal.
fn literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(x) => x.to_string(),
        Value::Float(x) => format!("{x:?}"),
        Value::Bool(b) => format!("'{b}'"),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::DateTime(x) => x.to_string(),
    }
}

fn where_clause(spec: &VisSpec) -> String {
    if spec.filters.is_empty() {
        return String::new();
    }
    let preds: Vec<String> = spec
        .filters
        .iter()
        .map(|f| {
            let op = match f.op {
                FilterOp::Eq => "=",
                FilterOp::Ne => "!=",
                FilterOp::Gt => ">",
                FilterOp::Lt => "<",
                FilterOp::Ge => ">=",
                FilterOp::Le => "<=",
            };
            format!("{} {op} {}", ident(&f.attribute), literal(&f.value))
        })
        .collect();
    format!(" WHERE {}", preds.join(" AND "))
}

fn agg_sql(agg: Agg, col: &str) -> Result<String> {
    let f = match agg {
        Agg::Count => "COUNT",
        Agg::Sum => "SUM",
        Agg::Mean => "AVG",
        Agg::Min => "MIN",
        Agg::Max => "MAX",
        other => {
            return Err(Error::InvalidArgument(format!(
                "aggregation {other} has no SQL translation in this engine"
            )))
        }
    };
    Ok(format!("{f}({})", ident(col)))
}

/// Emit the Table-2 SQL query for a spec. `meta_min` supplies the binned
/// attribute's minimum (histograms bin as `FLOOR((x - lo) / width)`; the
/// caller provides `lo`/`width` from metadata, as Lux's SQL executor does).
pub fn to_sql(spec: &VisSpec, df: &DataFrame, opts: &ProcessOptions) -> Result<String> {
    let wher = where_clause(spec);
    match spec.mark {
        Mark::Scatter => {
            let x = spec
                .channel(Channel::X)
                .ok_or_else(|| Error::InvalidArgument("scatter needs x".into()))?;
            let y = spec
                .channel(Channel::Y)
                .ok_or_else(|| Error::InvalidArgument("scatter needs y".into()))?;
            let mut cols = vec![ident(&x.attribute), ident(&y.attribute)];
            if let Some(c) = spec.channel(Channel::Color) {
                cols.push(ident(&c.attribute));
            }
            Ok(format!(
                "SELECT {} FROM t{wher} LIMIT {}",
                cols.join(", "),
                opts.max_points
            ))
        }
        Mark::Bar | Mark::Line | Mark::Choropleth => {
            let x = spec
                .channel(Channel::X)
                .ok_or_else(|| Error::InvalidArgument("group chart needs x".into()))?;
            let y = spec.channel(Channel::Y);
            let color = spec.channel(Channel::Color).filter(|e| !e.synthetic);
            let mut select = vec![ident(&x.attribute)];
            let mut group = vec![ident(&x.attribute)];
            if let Some(c) = color {
                if c.aggregation.is_none() {
                    select.push(ident(&c.attribute));
                    group.push(ident(&c.attribute));
                }
            }
            let (measure, y_name) = match y {
                Some(e) if !e.synthetic => {
                    let agg = e.aggregation.unwrap_or(Agg::Mean);
                    (
                        format!("{} AS {}", agg_sql(agg, &e.attribute)?, ident(&e.attribute)),
                        e.attribute.clone(),
                    )
                }
                _ => ("COUNT(*) AS count".to_string(), "count".to_string()),
            };
            select.push(measure);
            if let Some(c) = color {
                if let Some(agg) = c.aggregation {
                    select.push(format!(
                        "{} AS {}",
                        agg_sql(agg, &c.attribute)?,
                        ident(&c.attribute)
                    ));
                }
            }
            let order = match spec.mark {
                Mark::Bar => format!(" ORDER BY {} DESC LIMIT {}", ident(&y_name), opts.max_bars),
                _ => format!(" ORDER BY {} ASC", ident(&x.attribute)),
            };
            Ok(format!(
                "SELECT {} FROM t{wher} GROUP BY {}{order}",
                select.join(", "),
                group.join(", ")
            ))
        }
        Mark::Histogram => {
            let x = spec
                .channel(Channel::X)
                .ok_or_else(|| Error::InvalidArgument("histogram needs x".into()))?;
            let bins = x.bin.unwrap_or(opts.histogram_bins).max(1);
            let (lo, hi) = filtered_min_max(spec, df, &x.attribute, opts)?;
            let width = if hi > lo {
                (hi - lo) / bins as f64
            } else {
                1.0
            };
            Ok(format!(
                "SELECT FLOOR(({col} - {lo:?}) / {width:?}) AS bin, COUNT(*) AS count FROM t{wher} GROUP BY bin ORDER BY bin ASC",
                col = ident(&x.attribute)
            ))
        }
        Mark::Heatmap => {
            let x = spec
                .channel(Channel::X)
                .ok_or_else(|| Error::InvalidArgument("heatmap needs x".into()))?;
            let y = spec
                .channel(Channel::Y)
                .ok_or_else(|| Error::InvalidArgument("heatmap needs y".into()))?;
            let xb = x.bin.unwrap_or(opts.heatmap_bins).max(1);
            let yb = y.bin.unwrap_or(opts.heatmap_bins).max(1);
            let (xlo, xhi) = filtered_min_max(spec, df, &x.attribute, opts)?;
            let (ylo, yhi) = filtered_min_max(spec, df, &y.attribute, opts)?;
            let xw = if xhi > xlo {
                (xhi - xlo) / xb as f64
            } else {
                1.0
            };
            let yw = if yhi > ylo {
                (yhi - ylo) / yb as f64
            } else {
                1.0
            };
            let mut select = format!(
                "FLOOR(({x} - {xlo:?}) / {xw:?}) AS xbin, FLOOR(({y} - {ylo:?}) / {yw:?}) AS ybin, COUNT(*) AS count",
                x = ident(&x.attribute),
                y = ident(&y.attribute),
            );
            if let Some(c) = spec.channel(Channel::Color).filter(|e| !e.synthetic) {
                select.push_str(&format!(
                    ", AVG({}) AS mean_{}",
                    ident(&c.attribute),
                    c.attribute
                ));
            }
            Ok(format!(
                "SELECT {select} FROM t{wher} GROUP BY xbin, ybin ORDER BY ybin ASC, xbin ASC"
            ))
        }
    }
}

/// min/max of an attribute under the spec's filters (two tiny SQL queries,
/// mirroring how a relational backend would plan the histogram).
fn filtered_min_max(
    spec: &VisSpec,
    df: &DataFrame,
    attr: &str,
    opts: &ProcessOptions,
) -> Result<(f64, f64)> {
    let wher = where_clause(spec);
    let q = format!(
        "SELECT MIN({c}) AS lo, MAX({c}) AS hi FROM t{wher}",
        c = ident(attr)
    );
    let r = query_with_retry(&q, df, opts)?;
    let lo = r.value(0, "lo")?.as_f64().unwrap_or(0.0);
    let hi = r.value(0, "hi")?.as_f64().unwrap_or(1.0);
    Ok((lo, hi))
}

/// Process a visualization through the SQL backend. The result frame has
/// the same columns as the native [`crate::data::process`] output (bin
/// columns hold bin *indices* scaled back to bin starts for histograms).
pub fn process_sql(spec: &VisSpec, df: &DataFrame, opts: &ProcessOptions) -> Result<DataFrame> {
    let sql = to_sql(spec, df, opts)?;
    let out = query_with_retry(&sql, df, opts)?;
    // Histograms: SQL's FLOOR puts the maximum value into its own edge bin
    // (index == bins); native processing clamps it into the last bin.
    // Merge edge bins and convert indices back to bin-start values so the
    // output matches native processing's x column exactly.
    if spec.mark == Mark::Histogram {
        let x = spec.channel(Channel::X).expect("checked in to_sql");
        let bins = x.bin.unwrap_or(opts.histogram_bins).max(1);
        let (lo, hi) = filtered_min_max(spec, df, &x.attribute, opts)?;
        let width = if hi > lo {
            (hi - lo) / bins as f64
        } else {
            1.0
        };
        let mut counts = vec![0i64; bins];
        for r in 0..out.num_rows() {
            let idx = out.value(r, "bin")?.as_f64().unwrap_or(0.0).max(0.0) as usize;
            let n = out.value(r, "count")?.as_f64().unwrap_or(0.0) as i64;
            counts[idx.min(bins - 1)] += n;
        }
        let starts: Vec<f64> = (0..bins).map(|b| lo + width * b as f64).collect();
        return DataFrameBuilder::new()
            .float(&x.attribute, starts)
            .int("count", counts)
            .build();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Encoding, FilterSpec};
    use lux_engine::SemanticType;

    fn df() -> DataFrame {
        DataFrameBuilder::new()
            .str("dept", ["Sales", "Eng", "Sales", "Eng", "HR"])
            .float("pay", [50.0, 80.0, 60.0, 90.0, 55.0])
            .float("age", [25.0, 32.0, 47.0, 28.0, 36.0])
            .build()
            .unwrap()
    }

    #[test]
    fn scatter_sql() {
        let spec = VisSpec::new(
            Mark::Scatter,
            vec![
                Encoding::new("pay", SemanticType::Quantitative, Channel::X),
                Encoding::new("age", SemanticType::Quantitative, Channel::Y),
            ],
            vec![FilterSpec::new("dept", FilterOp::Eq, Value::str("Sales"))],
        );
        let sql = to_sql(&spec, &df(), &ProcessOptions::default()).unwrap();
        assert!(sql.contains("SELECT \"pay\", \"age\" FROM t WHERE \"dept\" = 'Sales'"));
        let out = process_sql(&spec, &df(), &ProcessOptions::default()).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn bar_sql_matches_native() {
        let spec = VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("dept", SemanticType::Nominal, Channel::X),
                Encoding::new("pay", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Mean),
            ],
            vec![],
        );
        let opts = ProcessOptions::default();
        let native = crate::data::process(&spec, &df(), &opts).unwrap();
        let sql = process_sql(&spec, &df(), &opts).unwrap();
        assert_eq!(native.num_rows(), sql.num_rows());
        for i in 0..native.num_rows() {
            assert_eq!(
                native.value(i, "dept").unwrap(),
                sql.value(i, "dept").unwrap()
            );
            assert_eq!(
                native.value(i, "pay").unwrap(),
                sql.value(i, "pay").unwrap()
            );
        }
    }

    #[test]
    fn histogram_sql_counts_match_native() {
        let big = DataFrameBuilder::new()
            .float("v", (0..100).map(|i| i as f64))
            .build()
            .unwrap();
        let spec = VisSpec::new(
            Mark::Histogram,
            vec![
                Encoding::new("v", SemanticType::Quantitative, Channel::X).with_bin(5),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![],
        );
        let opts = ProcessOptions::default();
        let native = crate::data::process(&spec, &big, &opts).unwrap();
        let sql = process_sql(&spec, &big, &opts).unwrap();
        let total = |d: &DataFrame| -> i64 {
            (0..d.num_rows())
                .map(|i| d.value(i, "count").unwrap().as_f64().unwrap() as i64)
                .sum()
        };
        assert_eq!(total(&native), total(&sql));
        assert_eq!(sql.num_rows(), 5);
    }

    #[test]
    fn unsupported_aggregation_rejected() {
        let spec = VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("dept", SemanticType::Nominal, Channel::X),
                Encoding::new("pay", SemanticType::Quantitative, Channel::Y)
                    .with_aggregation(Agg::Median),
            ],
            vec![],
        );
        assert!(to_sql(&spec, &df(), &ProcessOptions::default()).is_err());
    }

    #[test]
    fn identifier_and_literal_quoting() {
        assert_eq!(ident("weird\"col"), "\"weird\"\"col\"");
        assert_eq!(literal(&Value::str("it's")), "'it''s'");
        assert_eq!(literal(&Value::Int(5)), "5");
    }
}
