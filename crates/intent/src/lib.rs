//! # lux-intent
//!
//! The paper's §5 intent language: a lightweight, succinct way to declare
//! analysis interest that both steers recommendations and creates
//! visualizations directly.
//!
//! - [`clause`] — the grammar terms ([`Clause`], attribute/value specs with
//!   unions and wildcards);
//! - [`parse`] — the string shorthand (`"Age"`, `"Department=Sales"`,
//!   `"Country=?"`, `"A|B"`);
//! - [`mod@validate`] — checks against frame metadata with correction
//!   suggestions (§7.1.1);
//! - [`mod@compile`] — Expand / Lookup / Infer into complete `VisSpec`s
//!   (§7.1.2).

pub mod clause;
pub mod compile;
pub mod parse;
pub mod validate;

pub use clause::{AttributeSpec, Clause, Intent, ValueSpec};
pub use compile::{compile, CompileOptions};
pub use parse::{parse_clause, parse_intent, parse_value};
pub use validate::{has_errors, validate, Diagnostic, Severity};
