//! Intent clauses — the terms of the paper's §5 grammar.
//!
//! ```text
//! <Intent> -> <Clause>+
//! <Clause> -> <Axis> | <Filter>
//! <Axis>   -> <attribute>* <channel> <aggregation> <bin_size>
//! <Filter> -> <attribute> [= > < <= >= !=] <value>
//! <attribute> -> attribute | union | ? constraint
//! <value>     -> value | union | ?
//! ```
//!
//! Axis attributes may be unions or wildcards (Eq. 4); filter values may be
//! unions or wildcards (Eq. 5). Channel, aggregation, and bin size are
//! optional on axes and inferred by the compiler when omitted.

use lux_dataframe::prelude::*;
use lux_engine::SemanticType;
use lux_vis::Channel;

/// The attribute part of an axis clause: one name, a union of names, or a
/// wildcard with an optional semantic-type constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeSpec {
    /// A union of one or more concrete attribute names.
    Named(Vec<String>),
    /// `?` — any attribute, optionally constrained to a semantic type.
    Wildcard { constraint: Option<SemanticType> },
}

impl AttributeSpec {
    pub fn one(name: impl Into<String>) -> AttributeSpec {
        AttributeSpec::Named(vec![name.into()])
    }

    pub fn is_wildcard(&self) -> bool {
        matches!(self, AttributeSpec::Wildcard { .. })
    }
}

/// The value part of a filter clause: one value, a union, or a wildcard.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueSpec {
    One(Value),
    Union(Vec<Value>),
    /// `?` — every distinct value of the filter attribute.
    Wildcard,
}

/// One clause of an intent.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    Axis {
        attribute: AttributeSpec,
        /// Explicit channel; inferred when `None`.
        channel: Option<Channel>,
        /// Explicit aggregation; inferred when `None`.
        aggregation: Option<Agg>,
        /// Explicit bin count; inferred when `None`.
        bin_size: Option<usize>,
    },
    Filter {
        attribute: String,
        op: FilterOp,
        value: ValueSpec,
    },
}

impl Clause {
    /// An axis over a single attribute (Q1: `lux.Clause(attribute="Age")`).
    pub fn axis(name: impl Into<String>) -> Clause {
        Clause::Axis {
            attribute: AttributeSpec::one(name),
            channel: None,
            aggregation: None,
            bin_size: None,
        }
    }

    /// An axis over a union of attributes (Q5: `["HourlyRate", "DailyRate", ...]`).
    pub fn axis_union<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Clause {
        Clause::Axis {
            attribute: AttributeSpec::Named(names.into_iter().map(Into::into).collect()),
            channel: None,
            aggregation: None,
            bin_size: None,
        }
    }

    /// A wildcard axis (Q6: `lux.Clause("?")`).
    pub fn wildcard() -> Clause {
        Clause::Axis {
            attribute: AttributeSpec::Wildcard { constraint: None },
            channel: None,
            aggregation: None,
            bin_size: None,
        }
    }

    /// A wildcard axis constrained to a semantic type
    /// (Q6: `lux.Clause("?", data_type="quantitative")`).
    pub fn wildcard_typed(constraint: SemanticType) -> Clause {
        Clause::Axis {
            attribute: AttributeSpec::Wildcard {
                constraint: Some(constraint),
            },
            channel: None,
            aggregation: None,
            bin_size: None,
        }
    }

    /// A concrete filter (Q2: `"Department=Sales"`).
    pub fn filter(attribute: impl Into<String>, op: FilterOp, value: Value) -> Clause {
        Clause::Filter {
            attribute: attribute.into(),
            op,
            value: ValueSpec::One(value),
        }
    }

    /// A filter over a union of values.
    pub fn filter_in<I: IntoIterator<Item = Value>>(
        attribute: impl Into<String>,
        values: I,
    ) -> Clause {
        Clause::Filter {
            attribute: attribute.into(),
            op: FilterOp::Eq,
            value: ValueSpec::Union(values.into_iter().collect()),
        }
    }

    /// A filter enumerating every value (Q7: `"Country=?"`).
    pub fn filter_wildcard(attribute: impl Into<String>) -> Clause {
        Clause::Filter {
            attribute: attribute.into(),
            op: FilterOp::Eq,
            value: ValueSpec::Wildcard,
        }
    }

    /// Set the channel (builder style). No-op on filters.
    pub fn on_channel(mut self, ch: Channel) -> Clause {
        if let Clause::Axis { channel, .. } = &mut self {
            *channel = Some(ch);
        }
        self
    }

    /// Set the aggregation (Q4: `lux.Clause("MonthlyIncome", aggregation=var)`).
    pub fn aggregate(mut self, agg: Agg) -> Clause {
        if let Clause::Axis { aggregation, .. } = &mut self {
            *aggregation = Some(agg);
        }
        self
    }

    /// Set the bin count.
    pub fn bin(mut self, bins: usize) -> Clause {
        if let Clause::Axis { bin_size, .. } = &mut self {
            *bin_size = Some(bins);
        }
        self
    }

    pub fn is_axis(&self) -> bool {
        matches!(self, Clause::Axis { .. })
    }

    pub fn is_filter(&self) -> bool {
        matches!(self, Clause::Filter { .. })
    }

    /// The number of alternatives this clause contributes to the expansion
    /// cross-product, given how many candidates a wildcard would match.
    pub fn alternatives(&self, wildcard_candidates: usize) -> usize {
        match self {
            Clause::Axis {
                attribute: AttributeSpec::Named(names),
                ..
            } => names.len(),
            Clause::Axis {
                attribute: AttributeSpec::Wildcard { .. },
                ..
            } => wildcard_candidates,
            Clause::Filter {
                value: ValueSpec::One(_),
                ..
            } => 1,
            Clause::Filter {
                value: ValueSpec::Union(vs),
                ..
            } => vs.len(),
            Clause::Filter {
                value: ValueSpec::Wildcard,
                ..
            } => wildcard_candidates,
        }
    }
}

/// A user intent: an ordered list of clauses.
pub type Intent = Vec<Clause>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let a = Clause::axis("Age")
            .aggregate(Agg::Var)
            .bin(5)
            .on_channel(Channel::Y);
        match a {
            Clause::Axis {
                attribute,
                channel,
                aggregation,
                bin_size,
            } => {
                assert_eq!(attribute, AttributeSpec::one("Age"));
                assert_eq!(channel, Some(Channel::Y));
                assert_eq!(aggregation, Some(Agg::Var));
                assert_eq!(bin_size, Some(5));
            }
            _ => panic!("expected axis"),
        }
    }

    #[test]
    fn filter_builders() {
        let f = Clause::filter("dept", FilterOp::Eq, Value::str("Sales"));
        assert!(f.is_filter());
        let w = Clause::filter_wildcard("Country");
        assert!(matches!(
            w,
            Clause::Filter {
                value: ValueSpec::Wildcard,
                ..
            }
        ));
        let u = Clause::filter_in("x", [Value::Int(1), Value::Int(2)]);
        assert_eq!(u.alternatives(99), 2);
    }

    #[test]
    fn builder_modifiers_noop_on_filters() {
        let f = Clause::filter("a", FilterOp::Eq, Value::Int(1)).aggregate(Agg::Mean);
        assert!(matches!(f, Clause::Filter { .. }));
    }

    #[test]
    fn alternatives_counting() {
        assert_eq!(Clause::axis("x").alternatives(10), 1);
        assert_eq!(Clause::axis_union(["a", "b", "c"]).alternatives(10), 3);
        assert_eq!(Clause::wildcard().alternatives(10), 10);
        assert_eq!(Clause::filter_wildcard("c").alternatives(7), 7);
    }
}
