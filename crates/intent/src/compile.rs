//! Intent compilation (paper §7.1.2): **Expand** the clause cross-product,
//! **Lookup** metadata to fill omitted details and drop invalid combinations,
//! and **Infer** marks/channels/transforms via rule-based design heuristics.

use lux_dataframe::prelude::*;
use lux_engine::{FrameMeta, SemanticType};
use lux_vis::{Channel, Encoding, FilterSpec, Mark, VisSpec};

use crate::clause::{AttributeSpec, Clause, ValueSpec};

/// Compilation knobs.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Cap on values a filter wildcard may enumerate.
    pub max_filter_expansions: usize,
    /// Default histogram bin count.
    pub histogram_bins: usize,
    /// Hard cap on the expanded cross-product, guarding against runaway
    /// wildcard × wildcard × wildcard intents.
    pub max_visualizations: usize,
    /// Frames with more rows than this get heatmaps instead of
    /// scatterplots for quantitative pairs (Lux's large-data behavior —
    /// overplotted scatters are both unreadable and expensive to ship).
    pub scatter_row_threshold: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            max_filter_expansions: 24,
            histogram_bins: 10,
            max_visualizations: 50_000,
            scatter_row_threshold: 50_000,
        }
    }
}

/// A fully-expanded axis: one attribute plus carried-over options.
#[derive(Debug, Clone)]
struct ConcreteAxis {
    attribute: String,
    channel: Option<Channel>,
    aggregation: Option<Agg>,
    bin_size: Option<usize>,
}

#[derive(Debug, Clone)]
enum ConcreteClause {
    Axis(ConcreteAxis),
    Filter(FilterSpec),
}

/// Compile a validated intent into complete [`VisSpec`]s.
///
/// With `n_i` alternatives for the i-th clause, the result contains up to
/// `n_1 × n_2 × ... × n_k` visualizations (Eq. 4-5 in the paper); invalid
/// combinations (repeated attributes, unsupported arities) are dropped in
/// the Lookup step.
pub fn compile(intent: &[Clause], meta: &FrameMeta, opts: &CompileOptions) -> Result<Vec<VisSpec>> {
    // ---- Expand -------------------------------------------------------
    let per_clause: Vec<Vec<ConcreteClause>> = intent
        .iter()
        .map(|c| expand_clause(c, meta, opts))
        .collect::<Result<_>>()?;

    let mut combos: Vec<Vec<ConcreteClause>> = vec![Vec::new()];
    for alternatives in &per_clause {
        let mut next = Vec::with_capacity(combos.len() * alternatives.len().max(1));
        for combo in &combos {
            for alt in alternatives {
                let mut c = combo.clone();
                c.push(alt.clone());
                next.push(c);
                if next.len() > opts.max_visualizations {
                    return Err(Error::InvalidArgument(format!(
                        "intent expands to more than {} visualizations",
                        opts.max_visualizations
                    )));
                }
            }
        }
        combos = next;
    }

    // ---- Lookup + Infer ------------------------------------------------
    let mut specs = Vec::new();
    for combo in combos {
        let mut axes: Vec<ConcreteAxis> = Vec::new();
        let mut filters: Vec<FilterSpec> = Vec::new();
        for cc in combo {
            match cc {
                ConcreteClause::Axis(a) => axes.push(a),
                ConcreteClause::Filter(f) => filters.push(f),
            }
        }
        if let Some(spec) = lookup_and_infer(axes, filters, meta, opts) {
            specs.push(spec);
        }
    }
    Ok(specs)
}

fn expand_clause(
    clause: &Clause,
    meta: &FrameMeta,
    opts: &CompileOptions,
) -> Result<Vec<ConcreteClause>> {
    match clause {
        Clause::Axis {
            attribute,
            channel,
            aggregation,
            bin_size,
        } => {
            let names: Vec<String> = match attribute {
                AttributeSpec::Named(names) => names.clone(),
                AttributeSpec::Wildcard { constraint } => meta
                    .columns
                    .iter()
                    .filter(|c| c.semantic != SemanticType::Id)
                    .filter(|c| constraint.is_none_or(|t| c.semantic == t))
                    .map(|c| c.name.clone())
                    .collect(),
            };
            if names.is_empty() {
                return Err(Error::InvalidArgument(
                    "axis clause matches no columns".to_string(),
                ));
            }
            Ok(names
                .into_iter()
                .map(|attribute| {
                    ConcreteClause::Axis(ConcreteAxis {
                        attribute,
                        channel: *channel,
                        aggregation: *aggregation,
                        bin_size: *bin_size,
                    })
                })
                .collect())
        }
        Clause::Filter {
            attribute,
            op,
            value,
        } => {
            let values: Vec<Value> = match value {
                ValueSpec::One(v) => vec![v.clone()],
                ValueSpec::Union(vs) => vs.clone(),
                ValueSpec::Wildcard => {
                    let cm = meta
                        .column(attribute)
                        .ok_or_else(|| Error::ColumnNotFound(attribute.clone()))?;
                    cm.unique_values
                        .iter()
                        .take(opts.max_filter_expansions)
                        .cloned()
                        .collect()
                }
            };
            if values.is_empty() {
                return Err(Error::InvalidArgument(format!(
                    "filter on {attribute:?} matches no values"
                )));
            }
            Ok(values
                .into_iter()
                .map(|v| ConcreteClause::Filter(FilterSpec::new(attribute.clone(), *op, v)))
                .collect())
        }
    }
}

/// Lookup metadata for each axis and infer the mark/channels. Returns `None`
/// for combinations that are invalid or would use ineffective encodings
/// (the compiler "removes any invalid visualizations", §7.1.2).
fn lookup_and_infer(
    axes: Vec<ConcreteAxis>,
    filters: Vec<FilterSpec>,
    meta: &FrameMeta,
    opts: &CompileOptions,
) -> Option<VisSpec> {
    // Drop combos that repeat an attribute (cross-products of overlapping
    // unions/wildcards produce e.g. Age vs Age).
    for i in 0..axes.len() {
        for j in i + 1..axes.len() {
            if axes[i].attribute == axes[j].attribute {
                return None;
            }
        }
    }
    // Lookup semantic types; unknown columns or Id columns invalidate.
    let semantics: Vec<SemanticType> = axes
        .iter()
        .map(|a| meta.column(&a.attribute).map(|c| c.semantic))
        .collect::<Option<Vec<_>>>()?;
    if semantics.contains(&SemanticType::Id) {
        return None;
    }
    for f in &filters {
        meta.column(&f.attribute)?;
    }

    match axes.len() {
        1 => infer_univariate(&axes[0], semantics[0], filters, opts),
        2 => infer_bivariate(&axes, &semantics, filters, opts, meta.num_rows),
        3 => infer_trivariate(&axes, &semantics, filters, opts, meta.num_rows),
        // 0 axes (pure filter intents) and >3 axes are not chartable here;
        // actions handle the 0-axis case by adding their own axes.
        _ => None,
    }
}

fn encoding_of(axis: &ConcreteAxis, semantic: SemanticType, channel: Channel) -> Encoding {
    let mut e = Encoding::new(axis.attribute.clone(), semantic, channel);
    e.aggregation = axis.aggregation;
    e.bin = axis.bin_size;
    e
}

fn infer_univariate(
    axis: &ConcreteAxis,
    semantic: SemanticType,
    filters: Vec<FilterSpec>,
    opts: &CompileOptions,
) -> Option<VisSpec> {
    let spec = match semantic {
        SemanticType::Quantitative => {
            let mut x = encoding_of(axis, semantic, Channel::X);
            if x.bin.is_none() {
                x.bin = Some(opts.histogram_bins);
            }
            VisSpec::new(
                Mark::Histogram,
                vec![x, Encoding::synthetic_count(Channel::Y)],
                filters,
            )
        }
        SemanticType::Nominal => VisSpec::new(
            Mark::Bar,
            vec![
                encoding_of(axis, semantic, Channel::X),
                Encoding::synthetic_count(Channel::Y),
            ],
            filters,
        ),
        SemanticType::Temporal => VisSpec::new(
            Mark::Line,
            vec![
                encoding_of(axis, semantic, Channel::X),
                Encoding::synthetic_count(Channel::Y),
            ],
            filters,
        ),
        SemanticType::Geographic => VisSpec::new(
            Mark::Choropleth,
            vec![
                encoding_of(axis, semantic, Channel::X),
                Encoding::synthetic_count(Channel::Y),
            ],
            filters,
        ),
        SemanticType::Id => return None,
    };
    Some(spec)
}

fn is_measure(axis: &ConcreteAxis, semantic: SemanticType) -> bool {
    semantic == SemanticType::Quantitative || axis.aggregation.is_some()
}

fn infer_bivariate(
    axes: &[ConcreteAxis],
    semantics: &[SemanticType],
    filters: Vec<FilterSpec>,
    opts: &CompileOptions,
    meta_rows: usize,
) -> Option<VisSpec> {
    let (a, b) = (&axes[0], &axes[1]);
    let (sa, sb) = (semantics[0], semantics[1]);
    let both_measures = is_measure(a, sa)
        && is_measure(b, sb)
        && a.aggregation.is_none()
        && b.aggregation.is_none();

    if both_measures {
        // Q x Q. Both binned, or too many rows to plot points -> heatmap;
        // otherwise scatter. Explicit channels are honored; default keeps
        // clause order (first -> x).
        let mark = if (a.bin_size.is_some() && b.bin_size.is_some())
            || meta_rows > opts.scatter_row_threshold
        {
            Mark::Heatmap
        } else {
            Mark::Scatter
        };
        let (xa, ya) = order_by_channel(a, b);
        let (sx, sy) = if std::ptr::eq(xa, a) {
            (sa, sb)
        } else {
            (sb, sa)
        };
        return Some(VisSpec::new(
            mark,
            vec![
                encoding_of(xa, sx, Channel::X),
                encoding_of(ya, sy, Channel::Y),
            ],
            filters,
        ));
    }

    // Dimension + measure -> grouped aggregate chart.
    let (dim_i, msr_i) = if is_measure(a, sa) && !is_measure(b, sb) {
        (1usize, 0usize)
    } else if is_measure(b, sb) && !is_measure(a, sa) {
        (0usize, 1usize)
    } else {
        // Dimension x dimension: bar of counts, second dimension on color.
        let x = encoding_of(&axes[0], semantics[0], Channel::X);
        let color = encoding_of(&axes[1], semantics[1], Channel::Color);
        let mark = mark_for_dimension(semantics[0]);
        return Some(VisSpec::new(
            mark,
            vec![x, Encoding::synthetic_count(Channel::Y), color],
            filters,
        ));
    };
    let (dim, dsem) = (&axes[dim_i], semantics[dim_i]);
    let (msr, msem) = (&axes[msr_i], semantics[msr_i]);
    let mark = mark_for_dimension(dsem);
    let x = encoding_of(dim, dsem, Channel::X);
    let mut y = encoding_of(msr, msem, Channel::Y);
    if y.aggregation.is_none() {
        // "By default, average is the function used for aggregation" (Q3).
        y.aggregation = Some(Agg::Mean);
    }
    let _ = opts;
    Some(VisSpec::new(mark, vec![x, y], filters))
}

fn infer_trivariate(
    axes: &[ConcreteAxis],
    semantics: &[SemanticType],
    filters: Vec<FilterSpec>,
    opts: &CompileOptions,
    meta_rows: usize,
) -> Option<VisSpec> {
    // Choose the color axis: an explicitly-assigned color, else the last
    // dimension, else the last axis.
    let color_i = axes
        .iter()
        .position(|a| a.channel == Some(Channel::Color))
        .or_else(|| (0..3).rev().find(|&i| !is_measure(&axes[i], semantics[i])))
        .unwrap_or(2);
    let rest: Vec<usize> = (0..3).filter(|&i| i != color_i).collect();
    let base_axes = vec![axes[rest[0]].clone(), axes[rest[1]].clone()];
    let base_sem = vec![semantics[rest[0]], semantics[rest[1]]];
    let mut spec = infer_bivariate(&base_axes, &base_sem, filters, opts, meta_rows)?;
    // Colored bar/line charts must not exceed 2D group-by: a quantitative
    // color on an aggregate chart gets a mean aggregation.
    let mut color = encoding_of(&axes[color_i], semantics[color_i], Channel::Color);
    if spec.mark != Mark::Scatter
        && spec.mark != Mark::Heatmap
        && semantics[color_i] == SemanticType::Quantitative
        && color.aggregation.is_none()
    {
        color.aggregation = Some(Agg::Mean);
    }
    spec.encodings.push(color);
    Some(spec)
}

fn mark_for_dimension(s: SemanticType) -> Mark {
    match s {
        SemanticType::Temporal => Mark::Line,
        SemanticType::Geographic => Mark::Choropleth,
        _ => Mark::Bar,
    }
}

/// Order two axes into (x, y) respecting any explicit channel choices.
fn order_by_channel<'a>(
    a: &'a ConcreteAxis,
    b: &'a ConcreteAxis,
) -> (&'a ConcreteAxis, &'a ConcreteAxis) {
    if a.channel == Some(Channel::Y) || b.channel == Some(Channel::X) {
        (b, a)
    } else {
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::Clause;
    use std::collections::HashMap;

    fn meta() -> FrameMeta {
        let df = DataFrameBuilder::new()
            .float("Age", [25.0, 32.0, 47.0])
            .float("Income", [50.0, 80.0, 60.0])
            .str("Education", ["HS", "BS", "MS"])
            .str("Country", ["USA", "France", "Japan"])
            .datetime("Date", ["2020-01-01", "2020-01-02", "2020-01-03"])
            .build()
            .unwrap();
        FrameMeta::compute(&df, &HashMap::new())
    }

    fn compile_one(intent: &[Clause]) -> VisSpec {
        let specs = compile(intent, &meta(), &CompileOptions::default()).unwrap();
        assert_eq!(specs.len(), 1, "expected exactly one vis, got {specs:?}");
        specs.into_iter().next().unwrap()
    }

    #[test]
    fn single_quantitative_becomes_histogram() {
        let spec = compile_one(&[Clause::axis("Age")]);
        assert_eq!(spec.mark, Mark::Histogram);
        assert_eq!(spec.channel(Channel::X).unwrap().bin, Some(10));
    }

    #[test]
    fn single_nominal_becomes_count_bar() {
        let spec = compile_one(&[Clause::axis("Education")]);
        assert_eq!(spec.mark, Mark::Bar);
        assert!(spec.channel(Channel::Y).unwrap().synthetic);
    }

    #[test]
    fn single_temporal_line_and_geo_map() {
        assert_eq!(compile_one(&[Clause::axis("Date")]).mark, Mark::Line);
        assert_eq!(
            compile_one(&[Clause::axis("Country")]).mark,
            Mark::Choropleth
        );
    }

    #[test]
    fn q3_dimension_measure_bar_with_mean() {
        // Q3: Compare average Age across Education levels.
        let spec = compile_one(&[Clause::axis("Age"), Clause::axis("Education")]);
        assert_eq!(spec.mark, Mark::Bar);
        assert_eq!(spec.channel(Channel::X).unwrap().attribute, "Education");
        let y = spec.channel(Channel::Y).unwrap();
        assert_eq!(y.attribute, "Age");
        assert_eq!(y.aggregation, Some(Agg::Mean));
    }

    #[test]
    fn q4_explicit_aggregation_override() {
        let spec = compile_one(&[
            Clause::axis("Income").aggregate(Agg::Var),
            Clause::axis("Education"),
        ]);
        assert_eq!(
            spec.channel(Channel::Y).unwrap().aggregation,
            Some(Agg::Var)
        );
    }

    #[test]
    fn two_quantitative_becomes_scatter() {
        let spec = compile_one(&[Clause::axis("Age"), Clause::axis("Income")]);
        assert_eq!(spec.mark, Mark::Scatter);
        assert_eq!(spec.channel(Channel::X).unwrap().attribute, "Age");
        assert_eq!(spec.channel(Channel::Y).unwrap().attribute, "Income");
    }

    #[test]
    fn explicit_channel_is_honored() {
        let spec = compile_one(&[
            Clause::axis("Age").on_channel(Channel::Y),
            Clause::axis("Income"),
        ]);
        assert_eq!(spec.channel(Channel::Y).unwrap().attribute, "Age");
        assert_eq!(spec.channel(Channel::X).unwrap().attribute, "Income");
    }

    #[test]
    fn q2_axis_plus_filter() {
        let spec = compile_one(&[
            Clause::axis("Age"),
            Clause::filter("Education", FilterOp::Eq, Value::str("BS")),
        ]);
        assert_eq!(spec.mark, Mark::Histogram);
        assert_eq!(spec.filters.len(), 1);
        assert_eq!(spec.filters[0].attribute, "Education");
    }

    #[test]
    fn q5_union_fans_out() {
        let specs = compile(
            &[
                Clause::axis("Education"),
                Clause::axis_union(["Age", "Income"]),
            ],
            &meta(),
            &CompileOptions::default(),
        )
        .unwrap();
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.mark == Mark::Bar));
    }

    #[test]
    fn q6_wildcard_pairs_exclude_self_pairs() {
        let intent = vec![
            Clause::wildcard_typed(SemanticType::Quantitative),
            Clause::wildcard_typed(SemanticType::Quantitative),
        ];
        let specs = compile(&intent, &meta(), &CompileOptions::default()).unwrap();
        // 2 quantitative columns -> 2x2 cross-product minus 2 self-pairs.
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.mark == Mark::Scatter));
    }

    #[test]
    fn q7_filter_wildcard_enumerates_values() {
        let intent = vec![Clause::axis("Age"), Clause::filter_wildcard("Country")];
        let specs = compile(&intent, &meta(), &CompileOptions::default()).unwrap();
        assert_eq!(specs.len(), 3); // USA, France, Japan
        assert!(specs
            .iter()
            .all(|s| s.mark == Mark::Histogram && s.filters.len() == 1));
    }

    #[test]
    fn three_axes_color_encoding() {
        let spec = compile_one(&[
            Clause::axis("Age"),
            Clause::axis("Income"),
            Clause::axis("Education"),
        ]);
        assert_eq!(spec.mark, Mark::Scatter);
        assert_eq!(spec.channel(Channel::Color).unwrap().attribute, "Education");
    }

    #[test]
    fn dimension_pair_uses_color_count_bar() {
        let spec = compile_one(&[Clause::axis("Education"), Clause::axis("Country")]);
        assert_eq!(spec.mark, Mark::Bar);
        assert_eq!(spec.channel(Channel::Color).unwrap().attribute, "Country");
        assert!(spec.channel(Channel::Y).unwrap().synthetic);
    }

    #[test]
    fn large_frames_switch_scatter_to_heatmap() {
        let opts = CompileOptions {
            scatter_row_threshold: 2,
            ..CompileOptions::default()
        };
        let specs = compile(
            &[Clause::axis("Age"), Clause::axis("Income")],
            &meta(),
            &opts,
        )
        .unwrap();
        assert_eq!(specs[0].mark, Mark::Heatmap); // fixture has 3 rows > 2
                                                  // small threshold not crossed -> scatter
        let opts = CompileOptions {
            scatter_row_threshold: 100,
            ..CompileOptions::default()
        };
        let specs = compile(
            &[Clause::axis("Age"), Clause::axis("Income")],
            &meta(),
            &opts,
        )
        .unwrap();
        assert_eq!(specs[0].mark, Mark::Scatter);
    }

    #[test]
    fn binned_pair_becomes_heatmap() {
        let spec = compile_one(&[Clause::axis("Age").bin(10), Clause::axis("Income").bin(10)]);
        assert_eq!(spec.mark, Mark::Heatmap);
    }

    #[test]
    fn unknown_column_yields_no_specs() {
        let specs = compile(&[Clause::axis("Nope")], &meta(), &CompileOptions::default()).unwrap();
        assert!(specs.is_empty());
    }

    #[test]
    fn expansion_cap_enforced() {
        let opts = CompileOptions {
            max_visualizations: 2,
            ..CompileOptions::default()
        };
        let intent = vec![Clause::wildcard(), Clause::wildcard()];
        assert!(compile(&intent, &meta(), &opts).is_err());
    }

    #[test]
    fn four_axes_unsupported() {
        let intent = vec![
            Clause::axis("Age"),
            Clause::axis("Income"),
            Clause::axis("Education"),
            Clause::axis("Country"),
        ];
        let specs = compile(&intent, &meta(), &CompileOptions::default()).unwrap();
        assert!(specs.is_empty());
    }
}
