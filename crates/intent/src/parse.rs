//! String syntax for intents — the "syntactic sugar" of §5.2.
//!
//! Accepted forms (matching the Python API's string shorthands):
//!
//! | input                      | meaning                                  |
//! |----------------------------|------------------------------------------|
//! | `"Age"`                    | axis on attribute `Age`                  |
//! | `"A\|B\|C"`                | axis on the union of `A`, `B`, `C`       |
//! | `"?"`                      | wildcard axis                            |
//! | `"?quantitative"`          | wildcard axis constrained by type        |
//! | `"Department=Sales"`       | equality filter                          |
//! | `"Age>=30"`                | comparison filter (numeric parse)        |
//! | `"Department=Sales\|Eng"`  | filter over a union of values            |
//! | `"Country=?"`              | filter enumerating every value           |

use lux_dataframe::prelude::*;
use lux_engine::SemanticType;

use crate::clause::{AttributeSpec, Clause, ValueSpec};

/// Parse one intent string into a [`Clause`].
pub fn parse_clause(input: &str) -> Result<Clause> {
    let s = input.trim();
    if s.is_empty() {
        return Err(Error::Parse("empty intent clause".into()));
    }

    // A filter is "attribute OP value" with the first operator occurrence
    // splitting the string. Scan for the earliest operator symbol.
    if let Some((attr, op, rest)) = split_filter(s) {
        let attr = attr.trim();
        if attr.is_empty() {
            return Err(Error::Parse(format!(
                "filter {s:?} is missing an attribute"
            )));
        }
        let rest = rest.trim();
        let value = if rest == "?" {
            if op != FilterOp::Eq {
                return Err(Error::Parse(format!(
                    "wildcard filter values require '=', got {:?}",
                    op.symbol()
                )));
            }
            ValueSpec::Wildcard
        } else if rest.contains('|') {
            if op != FilterOp::Eq {
                return Err(Error::Parse(format!(
                    "union filter values require '=', got {:?}",
                    op.symbol()
                )));
            }
            ValueSpec::Union(rest.split('|').map(|p| parse_value(p.trim())).collect())
        } else {
            ValueSpec::One(parse_value(rest))
        };
        return Ok(Clause::Filter {
            attribute: attr.to_string(),
            op,
            value,
        });
    }

    // Wildcard axis, optionally with a type constraint.
    if let Some(rest) = s.strip_prefix('?') {
        let constraint = if rest.trim().is_empty() {
            None
        } else {
            Some(SemanticType::parse(rest.trim()).ok_or_else(|| {
                Error::Parse(format!("unknown wildcard constraint {:?}", rest.trim()))
            })?)
        };
        return Ok(Clause::Axis {
            attribute: AttributeSpec::Wildcard { constraint },
            channel: None,
            aggregation: None,
            bin_size: None,
        });
    }

    // Axis: single attribute or union.
    if s.contains('|') {
        let names: Vec<String> = s.split('|').map(|p| p.trim().to_string()).collect();
        if names.iter().any(String::is_empty) {
            return Err(Error::Parse(format!(
                "axis union {s:?} has an empty member"
            )));
        }
        return Ok(Clause::axis_union(names));
    }
    Ok(Clause::axis(s))
}

/// Parse a whole intent from strings (the `df.intent = ["Age", "Dept=Sales"]`
/// shorthand).
pub fn parse_intent<S: AsRef<str>, I: IntoIterator<Item = S>>(inputs: I) -> Result<Vec<Clause>> {
    inputs
        .into_iter()
        .map(|s| parse_clause(s.as_ref()))
        .collect()
}

/// Find the first filter operator in `s`, returning (lhs, op, rhs). `!=`,
/// `>=`, `<=` are matched before their one-character prefixes.
fn split_filter(s: &str) -> Option<(&str, FilterOp, &str)> {
    for (i, _) in s.char_indices() {
        if let Some((op, rest)) = FilterOp::parse_prefix(&s[i..]) {
            return Some((&s[..i], op, rest));
        }
    }
    None
}

/// Interpret a filter value string: int, then float, then bool, then date,
/// falling back to a string value.
pub fn parse_value(s: &str) -> Value {
    let t = s.trim();
    if let Ok(i) = t.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        return Value::Float(f);
    }
    match t.to_ascii_lowercase().as_str() {
        "true" => return Value::Bool(true),
        "false" => return Value::Bool(false),
        _ => {}
    }
    if t.len() >= 8 && t.chars().filter(|c| *c == '-').count() >= 2 {
        if let Some(dt) = lux_dataframe::value::parse_datetime(t) {
            return Value::DateTime(dt);
        }
    }
    Value::str(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_axis() {
        assert_eq!(parse_clause("Age").unwrap(), Clause::axis("Age"));
        assert_eq!(parse_clause("  Age  ").unwrap(), Clause::axis("Age"));
    }

    #[test]
    fn axis_union() {
        assert_eq!(
            parse_clause("HourlyRate|DailyRate").unwrap(),
            Clause::axis_union(["HourlyRate", "DailyRate"])
        );
        assert!(parse_clause("a||b").is_err());
    }

    #[test]
    fn wildcards() {
        assert_eq!(parse_clause("?").unwrap(), Clause::wildcard());
        assert_eq!(
            parse_clause("?quantitative").unwrap(),
            Clause::wildcard_typed(SemanticType::Quantitative)
        );
        assert!(parse_clause("?bogus").is_err());
    }

    #[test]
    fn equality_filter_with_string_value() {
        let c = parse_clause("Department=Sales").unwrap();
        assert_eq!(
            c,
            Clause::filter("Department", FilterOp::Eq, Value::str("Sales"))
        );
    }

    #[test]
    fn comparison_filters_parse_numbers() {
        assert_eq!(
            parse_clause("Age>=30").unwrap(),
            Clause::filter("Age", FilterOp::Ge, Value::Int(30))
        );
        assert_eq!(
            parse_clause("score<0.5").unwrap(),
            Clause::filter("score", FilterOp::Lt, Value::Float(0.5))
        );
        assert_eq!(
            parse_clause("flag!=true").unwrap(),
            Clause::filter("flag", FilterOp::Ne, Value::Bool(true))
        );
    }

    #[test]
    fn filter_value_wildcard_and_union() {
        assert_eq!(
            parse_clause("Country=?").unwrap(),
            Clause::filter_wildcard("Country")
        );
        let c = parse_clause("dept=Sales|Eng").unwrap();
        assert_eq!(
            c,
            Clause::filter_in("dept", [Value::str("Sales"), Value::str("Eng")])
        );
        // wildcard/union with non-equality operator is rejected
        assert!(parse_clause("x>?").is_err());
        assert!(parse_clause("x>1|2").is_err());
    }

    #[test]
    fn date_values() {
        let c = parse_clause("date=2020-03-11").unwrap();
        match c {
            Clause::Filter {
                value: ValueSpec::One(Value::DateTime(_)),
                ..
            } => {}
            other => panic!("expected datetime filter, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_missing_parts_error() {
        assert!(parse_clause("").is_err());
        assert!(parse_clause("=Sales").is_err());
    }

    #[test]
    fn parse_intent_batches() {
        let intent = parse_intent(["Age", "Department=Sales"]).unwrap();
        assert_eq!(intent.len(), 2);
        assert!(intent[0].is_axis() && intent[1].is_filter());
        assert!(parse_intent(["ok", ""]).is_err());
    }
}
