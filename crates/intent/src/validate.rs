//! Intent validation (paper §7.1.1).
//!
//! The validator checks clauses against the dataframe's pre-computed
//! metadata and "provides early warnings and suggests corrections": unknown
//! attributes get nearest-name suggestions, filter values are checked
//! against the column's observed uniques, and transforms are type-checked.

use lux_dataframe::prelude::*;
use lux_engine::{FrameMeta, SemanticType};

use crate::clause::{AttributeSpec, Clause, ValueSpec};

/// A validation problem. `Error`s prevent compilation; `Warning`s don't.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

/// One validator finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub message: String,
    /// A corrected input the user probably meant, when one exists.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    fn error(message: String, suggestion: Option<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message,
            suggestion,
        }
    }

    fn warning(message: String, suggestion: Option<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            message,
            suggestion,
        }
    }
}

/// Validate an intent against frame metadata. Returns every finding;
/// use [`has_errors`] to decide whether compilation may proceed.
pub fn validate(intent: &[Clause], meta: &FrameMeta) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for clause in intent {
        match clause {
            Clause::Axis {
                attribute,
                aggregation,
                bin_size,
                ..
            } => {
                if let AttributeSpec::Named(names) = attribute {
                    for name in names {
                        match meta.column(name) {
                            None => out.push(unknown_attribute(name, meta)),
                            Some(cm) => {
                                if aggregation.is_some_and(|a| a.requires_numeric())
                                    && !cm.dtype.is_numeric()
                                {
                                    out.push(Diagnostic::error(
                                        format!(
                                            "aggregation {} is not defined for non-numeric column {name:?} ({})",
                                            aggregation.unwrap(),
                                            cm.dtype
                                        ),
                                        None,
                                    ));
                                }
                                if bin_size.is_some()
                                    && cm.semantic != SemanticType::Quantitative
                                    && cm.semantic != SemanticType::Temporal
                                {
                                    out.push(Diagnostic::warning(
                                        format!(
                                            "binning a {} column {name:?} is unusual",
                                            cm.semantic
                                        ),
                                        None,
                                    ));
                                }
                            }
                        }
                    }
                }
                if let Some(b) = bin_size {
                    if *b == 0 {
                        out.push(Diagnostic::error("bin size must be >= 1".into(), None));
                    }
                }
            }
            Clause::Filter {
                attribute,
                op,
                value,
            } => match meta.column(attribute) {
                None => out.push(unknown_attribute(attribute, meta)),
                Some(cm) => {
                    let check_value = |v: &Value, out: &mut Vec<Diagnostic>| {
                        // only flag unseen values on complete unique lists
                        // and equality filters, where "no match" is certain
                        if *op == FilterOp::Eq
                            && cm.unique_complete
                            && !v.is_null()
                            && !cm.unique_values.iter().any(|u| u == v)
                        {
                            let suggestion = v.as_str().and_then(|s| {
                                nearest(s, cm.unique_values.iter().filter_map(|u| u.as_str()))
                            });
                            out.push(Diagnostic::warning(
                                format!(
                                    "value {v} does not occur in column {attribute:?}; the filter will match nothing"
                                ),
                                suggestion,
                            ));
                        }
                        // comparisons on string columns are suspicious
                        if !matches!(op, FilterOp::Eq | FilterOp::Ne) && cm.dtype == DType::Str {
                            out.push(Diagnostic::warning(
                                format!(
                                    "ordered comparison on string column {attribute:?} uses lexicographic order"
                                ),
                                None,
                            ));
                        }
                    };
                    match value {
                        ValueSpec::One(v) => check_value(v, &mut out),
                        ValueSpec::Union(vs) => {
                            for v in vs {
                                check_value(v, &mut out);
                            }
                        }
                        ValueSpec::Wildcard => {
                            if cm.cardinality == 0 {
                                out.push(Diagnostic::warning(
                                    format!("column {attribute:?} has no values to enumerate"),
                                    None,
                                ));
                            }
                        }
                    }
                }
            },
        }
    }
    out
}

/// True when any diagnostic is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

fn unknown_attribute(name: &str, meta: &FrameMeta) -> Diagnostic {
    let suggestion = nearest(name, meta.columns.iter().map(|c| c.name.as_str()));
    Diagnostic::error(format!("column not found: {name:?}"), suggestion)
}

/// The candidate with the smallest edit distance, if within a sane bound.
fn nearest<'a, I: Iterator<Item = &'a str>>(target: &str, candidates: I) -> Option<String> {
    let target_l = target.to_ascii_lowercase();
    candidates
        .map(|c| (edit_distance(&target_l, &c.to_ascii_lowercase()), c))
        .filter(|(d, c)| *d <= (c.len() / 2).max(2))
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c.to_string())
}

/// Classic Levenshtein distance (O(nm), fine for column names).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn meta() -> FrameMeta {
        let df = DataFrameBuilder::new()
            .float("AvrgLifeExpectancy", [70.0, 80.0])
            .str("Region", ["Europe", "Africa"])
            .int("Population", [1000, 2000])
            .build()
            .unwrap();
        FrameMeta::compute(&df, &HashMap::new())
    }

    #[test]
    fn valid_intent_is_clean() {
        let intent = vec![Clause::axis("Region"), Clause::axis("Population")];
        assert!(validate(&intent, &meta()).is_empty());
    }

    #[test]
    fn unknown_attribute_suggests_nearest() {
        let intent = vec![Clause::axis("region")]; // case typo
        let diags = validate(&intent, &meta());
        assert!(has_errors(&diags));
        assert_eq!(diags[0].suggestion.as_deref(), Some("Region"));
    }

    #[test]
    fn numeric_agg_on_string_is_error() {
        let intent = vec![Clause::axis("Region").aggregate(Agg::Mean)];
        let diags = validate(&intent, &meta());
        assert!(has_errors(&diags));
    }

    #[test]
    fn unseen_filter_value_warns_with_suggestion() {
        let intent = vec![Clause::filter("Region", FilterOp::Eq, Value::str("Europ"))];
        let diags = validate(&intent, &meta());
        assert!(!has_errors(&diags)); // warning only
        assert_eq!(diags[0].suggestion.as_deref(), Some("Europe"));
    }

    #[test]
    fn string_comparison_warns() {
        let intent = vec![Clause::filter("Region", FilterOp::Gt, Value::str("A"))];
        let diags = validate(&intent, &meta());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn zero_bins_is_error() {
        let intent = vec![Clause::axis("Population").bin(0)];
        assert!(has_errors(&validate(&intent, &meta())));
    }

    #[test]
    fn wildcards_validate_clean() {
        let intent = vec![Clause::wildcard(), Clause::filter_wildcard("Region")];
        assert!(validate(&intent, &meta()).is_empty());
    }

    #[test]
    fn edit_distance_basic() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
    }
}
