//! Per-pass performance summaries (DESIGN.md §7).
//!
//! Every [`crate::LuxDataFrame::print`] records a full
//! [`PassTrace`](lux_engine::trace::PassTrace) span tree; [`PassSummary`]
//! boils one down to the handful of numbers worth surfacing inline — stage
//! durations, the WFLOW memo outcome, and per-action tallies. It feeds the
//! widget's timing footer and the `PassSummary` session-log event, so the
//! JSONL usage logs carry the same figures the trace does.

use std::time::Duration;

use lux_engine::trace::{json_escape, PassTrace};

/// Compact per-pass numbers derived from a [`PassTrace`].
#[derive(Debug, Clone)]
pub struct PassSummary {
    /// Wall-clock extent of the whole pass.
    pub total: Duration,
    /// Table rendering time.
    pub table: Duration,
    /// Metadata stage time (zero when served from the memo).
    pub metadata: Duration,
    /// CPU-summed metadata time: per-column scan spans added up across
    /// workers. Exceeds `metadata` when column scans ran in parallel.
    pub metadata_cpu: Duration,
    /// Recommendation stage time (all actions, including scheduling).
    pub actions: Duration,
    /// CPU-summed action time: per-action spans added up across workers.
    /// Exceeds `actions` when actions ran in parallel.
    pub actions_cpu: Duration,
    /// WFLOW memo outcome for the recommendation stage:
    /// `"hit"`, `"miss"`, `"off"`, or `"unknown"` (untagged trace).
    pub memo: String,
    pub actions_ok: usize,
    pub actions_degraded: usize,
    pub actions_failed: usize,
    pub actions_disabled: usize,
    /// The slowest executed action and its duration, when any ran.
    pub slowest: Option<(String, Duration)>,
    /// Degradation events recorded by the pass's resource governor
    /// (0 when the pass ran entirely exact).
    pub governor_degrades: usize,
    /// Whether the pass memory budget was breached.
    pub governor_breached: bool,
    /// Why admission control shed the pass (`None` for admitted passes).
    pub admission_shed: Option<String>,
    /// How long the pass waited in the admission queue before starting.
    pub admission_wait: Duration,
    /// Engine pressure at admission time (`normal`/`elevated`/`critical`),
    /// `None` on untagged (pre-admission) traces.
    pub admission_pressure: Option<String>,
    /// Wire-propagated request id (client-supplied or server-minted), `None`
    /// for local passes without request context.
    pub request_id: Option<String>,
    /// Tenant the pass was attributed to (request context, falling back to
    /// the admission tenant tag).
    pub tenant: Option<String>,
}

impl PassSummary {
    /// Summarize a finished pass. Works on any trace shape: missing spans
    /// simply summarize to zero, so partial traces stay representable.
    pub fn from_trace(trace: &PassTrace) -> PassSummary {
        let stage = |name: &str| trace.span(name).map(|s| s.duration()).unwrap_or_default();
        let memo = trace
            .span("actions")
            .and_then(|s| s.tag("memo"))
            .unwrap_or("unknown")
            .to_string();
        let (mut ok, mut degraded, mut failed, mut disabled) = (0, 0, 0, 0);
        let mut slowest: Option<(String, Duration)> = None;
        let mut actions_cpu = Duration::ZERO;
        for span in trace.spans_prefixed("action:") {
            let status = span.tag("status");
            match status {
                Some("ok") | Some("empty") => ok += 1,
                Some("degraded") => degraded += 1,
                Some("failed") | Some("abandoned") => failed += 1,
                Some("disabled") => disabled += 1,
                _ => {}
            }
            if status != Some("disabled") {
                actions_cpu += span.duration();
                if slowest.as_ref().map_or(true, |(_, d)| span.duration() > *d) {
                    let name = span.name.trim_start_matches("action:").to_string();
                    slowest = Some((name, span.duration()));
                }
            }
        }
        let metadata_cpu = trace
            .spans_prefixed("column:")
            .iter()
            .map(|s| s.duration())
            .sum::<Duration>();
        let root_tag = |key: &str| trace.span("print").and_then(|s| s.tag(key));
        let governor_degrades = root_tag("governor.degrades")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let governor_breached = root_tag("governor.breached") == Some("true");
        let admission_shed = root_tag("admission.shed").map(str::to_string);
        let admission_wait = root_tag("admission.wait_ms")
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or_default();
        let admission_pressure = root_tag("admission.pressure").map(str::to_string);
        let request_id = root_tag("request.id").map(str::to_string);
        let tenant = root_tag("request.tenant")
            .or_else(|| root_tag("admission.tenant"))
            .map(str::to_string);
        PassSummary {
            total: trace.total(),
            table: stage("table"),
            metadata: stage("metadata"),
            metadata_cpu,
            actions: stage("actions"),
            actions_cpu,
            memo,
            actions_ok: ok,
            actions_degraded: degraded,
            actions_failed: failed,
            actions_disabled: disabled,
            slowest,
            governor_degrades,
            governor_breached,
            admission_shed,
            admission_wait,
            admission_pressure,
            request_id,
            tenant,
        }
    }

    fn action_tally(&self) -> String {
        let mut parts = vec![format!("{} ok", self.actions_ok)];
        if self.actions_degraded > 0 {
            parts.push(format!("{} degraded", self.actions_degraded));
        }
        if self.actions_failed > 0 {
            parts.push(format!("{} failed", self.actions_failed));
        }
        if self.actions_disabled > 0 {
            parts.push(format!("{} disabled", self.actions_disabled));
        }
        parts.join(", ")
    }

    /// The one-line timing footer shown under the widget.
    pub fn footer(&self) -> String {
        if let Some(reason) = &self.admission_shed {
            return format!("[pass {} | shed: {reason}]", fmt_ms(self.total));
        }
        let admission = match (&self.admission_pressure, self.admission_wait) {
            (Some(p), w) if p != "normal" || !w.is_zero() => {
                format!(" | admission {p} ({})", fmt_ms(w))
            }
            _ => String::new(),
        };
        let governor = if self.governor_breached || self.governor_degrades > 0 {
            format!(
                " | governor {} degrade(s){}",
                self.governor_degrades,
                if self.governor_breached {
                    ", budget breached"
                } else {
                    ""
                }
            )
        } else {
            String::new()
        };
        format!(
            "[pass {} | metadata {}{} | actions {}{} ({}) | memo {}{governor}{admission}]",
            fmt_ms(self.total),
            fmt_ms(self.metadata),
            fmt_cpu(self.metadata, self.metadata_cpu),
            fmt_ms(self.actions),
            fmt_cpu(self.actions, self.actions_cpu),
            self.action_tally(),
            self.memo,
        )
    }

    /// A compact JSON object — the detail payload of the `PassSummary`
    /// session-log event.
    pub fn to_compact_json(&self) -> String {
        let slowest = match &self.slowest {
            Some((name, d)) => format!(
                ", \"slowest\": \"{}\", \"slowest_ms\": {:.3}",
                json_escape(name),
                d.as_secs_f64() * 1e3
            ),
            None => String::new(),
        };
        let mut admission = String::new();
        if let Some(reason) = &self.admission_shed {
            admission.push_str(&format!(", \"shed\": \"{}\"", json_escape(reason)));
        }
        if !self.admission_wait.is_zero() {
            admission.push_str(&format!(
                ", \"admission_wait_ms\": {:.3}",
                self.admission_wait.as_secs_f64() * 1e3
            ));
        }
        if let Some(p) = &self.admission_pressure {
            admission.push_str(&format!(", \"admission_pressure\": \"{}\"", json_escape(p)));
        }
        if let Some(id) = &self.request_id {
            admission.push_str(&format!(", \"request_id\": \"{}\"", json_escape(id)));
        }
        if let Some(t) = &self.tenant {
            admission.push_str(&format!(", \"tenant\": \"{}\"", json_escape(t)));
        }
        format!(
            "{{\"total_ms\": {:.3}, \"table_ms\": {:.3}, \"metadata_ms\": {:.3}, \"metadata_cpu_ms\": {:.3}, \"actions_ms\": {:.3}, \"actions_cpu_ms\": {:.3}, \"memo\": \"{}\", \"ok\": {}, \"degraded\": {}, \"failed\": {}, \"disabled\": {}, \"governor_degrades\": {}, \"governor_breached\": {}{slowest}{admission}}}",
            self.total.as_secs_f64() * 1e3,
            self.table.as_secs_f64() * 1e3,
            self.metadata.as_secs_f64() * 1e3,
            self.metadata_cpu.as_secs_f64() * 1e3,
            self.actions.as_secs_f64() * 1e3,
            self.actions_cpu.as_secs_f64() * 1e3,
            json_escape(&self.memo),
            self.actions_ok,
            self.actions_degraded,
            self.actions_failed,
            self.actions_disabled,
            self.governor_degrades,
            self.governor_breached,
        )
    }
}

fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 100.0 {
        format!("{ms:.0}ms")
    } else {
        format!("{ms:.2}ms")
    }
}

/// ` (cpu Xms)` suffix for a stage whose summed worker time is visibly
/// larger than its wall time — i.e. the stage actually ran in parallel.
/// Empty otherwise, keeping sequential footers unchanged.
fn fmt_cpu(wall: Duration, cpu: Duration) -> String {
    if cpu > wall && cpu - wall > Duration::from_micros(100) {
        format!(" (cpu {})", fmt_ms(cpu))
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lux_engine::trace::TraceCollector;

    fn traced_pass() -> PassTrace {
        let c = TraceCollector::new();
        let root = c.begin(None, "print");
        c.time(Some(root), "table", || {});
        c.time(Some(root), "metadata", || {});
        let actions = c.begin(Some(root), "actions");
        c.tag(actions, "memo", "miss");
        let a1 = c.begin(Some(actions), "action:Correlation");
        c.tag(a1, "status", "ok");
        c.end(a1);
        let a2 = c.begin(Some(actions), "action:Chaos");
        c.tag(a2, "status", "failed");
        c.end(a2);
        c.end(actions);
        c.end(root);
        c.snapshot()
    }

    #[test]
    fn summary_tallies_statuses_and_memo() {
        let s = PassSummary::from_trace(&traced_pass());
        assert_eq!(s.memo, "miss");
        assert_eq!(s.actions_ok, 1);
        assert_eq!(s.actions_failed, 1);
        assert_eq!(s.actions_degraded, 0);
        assert!(s.slowest.is_some());
    }

    #[test]
    fn footer_and_json_render() {
        let s = PassSummary::from_trace(&traced_pass());
        let footer = s.footer();
        assert!(footer.contains("memo miss"), "{footer}");
        assert!(footer.contains("1 ok, 1 failed"), "{footer}");
        let json = s.to_compact_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"memo\": \"miss\""));
        assert!(json.contains("\"slowest\""));
    }

    #[test]
    fn governor_tags_flow_into_summary_and_footer() {
        let c = TraceCollector::new();
        let root = c.begin(None, "print");
        c.tag(root, "governor.degrades", "3");
        c.tag(root, "governor.breached", "true");
        c.end(root);
        let s = PassSummary::from_trace(&c.snapshot());
        assert_eq!(s.governor_degrades, 3);
        assert!(s.governor_breached);
        let footer = s.footer();
        assert!(
            footer.contains("governor 3 degrade(s), budget breached"),
            "{footer}"
        );
        let json = s.to_compact_json();
        assert!(json.contains("\"governor_degrades\": 3"), "{json}");
        // an exact pass keeps the footer clean
        let clean = PassSummary::from_trace(&traced_pass()).footer();
        assert!(!clean.contains("governor"), "{clean}");
    }

    #[test]
    fn admission_tags_flow_into_summary_and_footer() {
        let c = TraceCollector::new();
        let root = c.begin(None, "print");
        c.tag(root, "admission.wait_ms", "12");
        c.tag(root, "admission.pressure", "elevated");
        c.end(root);
        let s = PassSummary::from_trace(&c.snapshot());
        assert_eq!(s.admission_wait, Duration::from_millis(12));
        assert_eq!(s.admission_pressure.as_deref(), Some("elevated"));
        let footer = s.footer();
        assert!(footer.contains("admission elevated"), "{footer}");
        let json = s.to_compact_json();
        assert!(
            json.contains("\"admission_pressure\": \"elevated\""),
            "{json}"
        );

        // a shed pass collapses the footer to the reason
        let c = TraceCollector::new();
        let root = c.begin(None, "print");
        c.tag(root, "admission.shed", "all 2 session slots busy");
        c.end(root);
        let s = PassSummary::from_trace(&c.snapshot());
        let footer = s.footer();
        assert!(
            footer.contains("shed: all 2 session slots busy"),
            "{footer}"
        );
        assert!(
            s.to_compact_json().contains("\"shed\""),
            "{}",
            s.to_compact_json()
        );

        // an unqueued normal pass keeps the footer clean
        let clean = PassSummary::from_trace(&traced_pass()).footer();
        assert!(!clean.contains("admission"), "{clean}");
    }

    #[test]
    fn request_context_tags_flow_into_summary_and_json() {
        let c = TraceCollector::new();
        let root = c.begin(None, "print");
        c.tag(root, "request.id", "cli-42");
        c.tag(root, "request.tenant", "acme");
        c.end(root);
        let s = PassSummary::from_trace(&c.snapshot());
        assert_eq!(s.request_id.as_deref(), Some("cli-42"));
        assert_eq!(s.tenant.as_deref(), Some("acme"));
        let json = s.to_compact_json();
        assert!(json.contains("\"request_id\": \"cli-42\""), "{json}");
        assert!(json.contains("\"tenant\": \"acme\""), "{json}");

        // Falls back to the admission tenant tag when only quotas tagged it.
        let c = TraceCollector::new();
        let root = c.begin(None, "print");
        c.tag(root, "admission.tenant", "beta");
        c.end(root);
        let s = PassSummary::from_trace(&c.snapshot());
        assert_eq!(s.tenant.as_deref(), Some("beta"));
        assert!(s.request_id.is_none());
        // Local passes stay clean.
        assert!(!PassSummary::from_trace(&traced_pass())
            .to_compact_json()
            .contains("request_id"));
    }

    #[test]
    fn empty_trace_summarizes_to_zeroes() {
        let s = PassSummary::from_trace(&PassTrace::default());
        assert_eq!(s.total, Duration::ZERO);
        assert_eq!(s.memo, "unknown");
        assert_eq!(s.actions_ok, 0);
        assert!(s.slowest.is_none());
    }
}
