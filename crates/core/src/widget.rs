//! The "widget": what printing a LuxDataFrame produces.
//!
//! The paper's widget is an ipywidgets HTML element with a toggle between
//! the pandas table and tabs of recommended visualizations. Headless here:
//! the widget holds the table text, the ranked [`ActionResult`] tabs, and
//! any intent diagnostics, and renders them as text, Vega-Lite JSON, or a
//! standalone HTML report (the paper's §10.3 export path).

use std::sync::Arc;

use lux_engine::PassTrace;
use lux_intent::{Diagnostic, Severity};
use lux_recs::{ActionHealth, ActionResult};
use lux_vis::render::{ascii, vega};

use crate::perf::PassSummary;

/// The output of [`crate::LuxDataFrame::print`].
pub struct Widget {
    table: String,
    results: Arc<Vec<ActionResult>>,
    health: Arc<Vec<ActionHealth>>,
    diagnostics: Vec<Diagnostic>,
    num_rows: usize,
    num_columns: usize,
    trace: Option<Arc<PassTrace>>,
    /// One-line summary of resource-governor degradations during the pass
    /// (`None` when everything ran exact within budget).
    governor_note: Option<String>,
    /// Set when admission control shed the pass: the engine was too busy to
    /// run recommendations, so the widget degrades to the plain table plus
    /// this reason (never a panic or a hang).
    shed_note: Option<String>,
}

impl Widget {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        table: String,
        results: Arc<Vec<ActionResult>>,
        health: Arc<Vec<ActionHealth>>,
        diagnostics: Vec<Diagnostic>,
        num_rows: usize,
        num_columns: usize,
        trace: Option<Arc<PassTrace>>,
        governor_note: Option<String>,
    ) -> Widget {
        Widget {
            table,
            results,
            health,
            diagnostics,
            num_rows,
            num_columns,
            trace,
            governor_note,
            shed_note: None,
        }
    }

    /// A well-formed "engine busy" widget: the table view with no
    /// recommendation tabs, produced when admission control sheds the pass
    /// under overload (DESIGN.md §10). Still a complete widget — display,
    /// export, and the timing footer all work.
    pub(crate) fn busy(
        table: String,
        diagnostics: Vec<Diagnostic>,
        num_rows: usize,
        num_columns: usize,
        trace: Option<Arc<PassTrace>>,
        shed_note: String,
    ) -> Widget {
        Widget {
            table,
            results: Arc::new(Vec::new()),
            health: Arc::new(Vec::new()),
            diagnostics,
            num_rows,
            num_columns,
            trace,
            governor_note: None,
            shed_note: Some(shed_note),
        }
    }

    /// The span tree of the pass that produced this widget.
    pub fn trace(&self) -> Option<&Arc<PassTrace>> {
        self.trace.as_ref()
    }

    /// The resource-governor marker for this pass: which steps degraded and
    /// why, or `None` when the pass ran entirely exact within its budget.
    pub fn governor_note(&self) -> Option<&str> {
        self.governor_note.as_deref()
    }

    /// Why admission control shed this pass, or `None` when it ran
    /// normally. A shed widget has a table but no recommendation tabs.
    pub fn shed_note(&self) -> Option<&str> {
        self.shed_note.as_deref()
    }

    /// Whether this pass was shed by admission control (engine busy).
    pub fn was_shed(&self) -> bool {
        self.shed_note.is_some()
    }

    /// The one-line per-pass timing footer (`None` for untraced widgets).
    pub fn timing_footer(&self) -> Option<String> {
        self.trace
            .as_ref()
            .map(|t| PassSummary::from_trace(t).footer())
    }

    /// The plain table view (the pandas-equivalent default display).
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The recommendation tabs, cheapest action first.
    pub fn results(&self) -> &[ActionResult] {
        &self.results
    }

    /// Intent diagnostics (empty when the intent validates cleanly).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Per-action health of the pass that produced these tabs: degraded,
    /// failed, and breaker-disabled actions carry their reasons.
    pub fn health(&self) -> &[ActionHealth] {
        &self.health
    }

    /// Health entries that are not plain `ok`.
    pub fn health_problems(&self) -> Vec<&ActionHealth> {
        self.health.iter().filter(|h| !h.status.is_ok()).collect()
    }

    /// Tab names, in display order.
    pub fn tabs(&self) -> Vec<&str> {
        self.results.iter().map(|r| r.action.as_str()).collect()
    }

    /// Render the "Lux view": every tab with its top visualizations drawn
    /// as terminal charts. `per_tab` caps how many charts each tab shows.
    pub fn render_lux_view(&self, per_tab: usize) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let tag = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            out.push_str(&format!("[{tag}] {}", d.message));
            if let Some(s) = &d.suggestion {
                out.push_str(&format!(" (did you mean {s:?}?)"));
            }
            out.push('\n');
        }
        for h in self.health_problems() {
            out.push_str(&format!("(!) action {h}\n"));
        }
        if let Some(note) = &self.governor_note {
            out.push_str(&format!("(~) {note}\n"));
        }
        if let Some(note) = &self.shed_note {
            out.push_str(&format!("(!) engine busy: {note}\n"));
            out.push_str(&self.table);
            return out;
        }
        if self.results.is_empty() {
            out.push_str("(no recommendations: showing table view)\n");
            out.push_str(&self.table);
            return out;
        }
        for r in self.results.iter() {
            let degraded = if r.degraded { ", degraded" } else { "" };
            out.push_str(&format!(
                "\n=== {} [{}] ({} vis, est. cost {:.0}{degraded}) ===\n",
                r.action,
                r.class.name(),
                r.vislist.len(),
                r.estimated_cost
            ));
            for vis in r.vislist.iter().take(per_tab) {
                out.push_str(&ascii::render(vis));
                out.push_str(&format!("score: {:.3}\n", vis.score));
            }
        }
        out
    }

    /// Full Vega-Lite JSON for every recommended visualization, grouped by
    /// action — the machine-readable export.
    pub fn to_vega_lite(&self) -> String {
        let mut parts = Vec::new();
        for r in self.results.iter() {
            let specs: Vec<String> = r.vislist.iter().map(vega::to_vega_lite).collect();
            parts.push(format!(
                "{{\"action\": \"{}\", \"charts\": [{}]}}",
                r.action,
                specs.join(", ")
            ));
        }
        format!("[{}]", parts.join(", "))
    }

    /// A standalone HTML report embedding the Vega-Lite charts (paper
    /// §10.3: "various options for export, from static HTML reports...").
    pub fn to_html(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!(
            "<h2>Dataframe: {} rows × {} columns</h2>\n<pre>{}</pre>\n",
            self.num_rows,
            self.num_columns,
            html_escape(&self.table)
        ));
        for r in self.results.iter() {
            body.push_str(&format!("<h3>{}</h3>\n", html_escape(&r.action)));
            for (i, vis) in r.vislist.iter().enumerate() {
                let div = format!("vis_{}_{}", sanitize(&r.action), i);
                body.push_str(&format!(
                    "<div id=\"{div}\"></div>\n<script>vegaEmbed('#{div}', {});</script>\n",
                    vega::to_vega_lite(vis)
                ));
            }
        }
        format!(
            "<!DOCTYPE html>\n<html><head>\n<script src=\"https://cdn.jsdelivr.net/npm/vega@5\"></script>\n<script src=\"https://cdn.jsdelivr.net/npm/vega-lite@5\"></script>\n<script src=\"https://cdn.jsdelivr.net/npm/vega-embed@6\"></script>\n</head><body>\n{body}</body></html>\n"
        )
    }
}

impl Widget {
    /// Write the standalone HTML report to a file (§10.3 downstream
    /// reporting: "various options for export, from static HTML reports").
    pub fn save_html(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_html())
    }

    /// Write the grouped Vega-Lite JSON to a file.
    pub fn save_vega_lite(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_vega_lite())
    }
}

impl std::fmt::Display for Widget {
    /// Default display: the table view plus a hint line — mirroring the
    /// paper's default-to-table behavior with a toggle to the Lux view.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.table)?;
        if !self.results.is_empty() {
            writeln!(
                f,
                "[{} recommendation tab(s): {}]",
                self.results.len(),
                self.tabs().join(", ")
            )?;
        }
        let problems = self.health_problems();
        if !problems.is_empty() {
            let notes: Vec<String> = problems
                .iter()
                .map(|h| format!("{}: {}", h.action, h.status.name()))
                .collect();
            writeln!(f, "[action health: {}]", notes.join(", "))?;
        }
        if let Some(note) = &self.governor_note {
            writeln!(f, "[{note}]")?;
        }
        if let Some(note) = &self.shed_note {
            writeln!(f, "[engine busy: {note}]")?;
        }
        if let Some(footer) = self.timing_footer() {
            writeln!(f, "{footer}")?;
        }
        Ok(())
    }
}

/// A flattened, wire-serializable snapshot of a [`Widget`] for the serving
/// layer: the rendered views plus the health/degradation notes, with the
/// heavyweight internals (span tree, raw `ActionResult`s) already rendered
/// to strings. Encodes to a versioned, length-prefixed binary payload that
/// the server frames onto the socket; decode is bounds-checked and returns
/// an error on truncation rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireWidget {
    pub num_rows: u64,
    pub num_columns: u64,
    pub table: String,
    /// The full Lux view rendered with the caller's per-tab chart cap.
    pub lux_view: String,
    /// Grouped Vega-Lite JSON (the machine-readable export).
    pub vega_lite: String,
    /// Tab names in display order.
    pub tabs: Vec<String>,
    /// Non-ok action health lines ("Correlation: degraded (...)").
    pub health_problems: Vec<String>,
    pub governor_note: Option<String>,
    pub shed_note: Option<String>,
    pub timing_footer: Option<String>,
}

/// Payload format version; bump on any field change.
const WIRE_WIDGET_VERSION: u8 = 1;

impl WireWidget {
    /// Flatten a widget for the wire. `per_tab` caps charts per tab in the
    /// rendered Lux view (the table/vega exports are unaffected).
    pub fn from_widget(w: &Widget, per_tab: usize) -> WireWidget {
        WireWidget {
            num_rows: w.num_rows as u64,
            num_columns: w.num_columns as u64,
            table: w.table().to_string(),
            lux_view: w.render_lux_view(per_tab),
            vega_lite: w.to_vega_lite(),
            tabs: w.tabs().iter().map(|t| t.to_string()).collect(),
            health_problems: w.health_problems().iter().map(|h| h.to_string()).collect(),
            governor_note: w.governor_note().map(str::to_string),
            shed_note: w.shed_note().map(str::to_string),
            timing_footer: w.timing_footer(),
        }
    }

    /// Whether the producing pass was shed by admission control.
    pub fn was_shed(&self) -> bool {
        self.shed_note.is_some()
    }

    /// Serialize to the versioned binary payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(64 + self.table.len() + self.lux_view.len() + self.vega_lite.len());
        out.push(WIRE_WIDGET_VERSION);
        put_u64(&mut out, self.num_rows);
        put_u64(&mut out, self.num_columns);
        put_str(&mut out, &self.table);
        put_str(&mut out, &self.lux_view);
        put_str(&mut out, &self.vega_lite);
        put_vec(&mut out, &self.tabs);
        put_vec(&mut out, &self.health_problems);
        put_opt(&mut out, self.governor_note.as_deref());
        put_opt(&mut out, self.shed_note.as_deref());
        put_opt(&mut out, self.timing_footer.as_deref());
        out
    }

    /// Deserialize a payload produced by [`WireWidget::encode`]. Truncated,
    /// oversized, or non-UTF-8 input yields `Err`, never a panic.
    pub fn decode(bytes: &[u8]) -> Result<WireWidget, String> {
        let mut cur = Cursor { buf: bytes, pos: 0 };
        let version = cur.u8()?;
        if version != WIRE_WIDGET_VERSION {
            return Err(format!(
                "unsupported widget payload version {version} (expected {WIRE_WIDGET_VERSION})"
            ));
        }
        let w = WireWidget {
            num_rows: cur.u64()?,
            num_columns: cur.u64()?,
            table: cur.str()?,
            lux_view: cur.str()?,
            vega_lite: cur.str()?,
            tabs: cur.vec()?,
            health_problems: cur.vec()?,
            governor_note: cur.opt()?,
            shed_note: cur.opt()?,
            timing_footer: cur.opt()?,
        };
        if cur.pos != bytes.len() {
            return Err(format!(
                "trailing garbage: {} byte(s) after widget payload",
                bytes.len() - cur.pos
            ));
        }
        Ok(w)
    }

    /// Human-readable rendering for the client side of the wire: the Lux
    /// view plus the footer, matching what a local print would show.
    pub fn render(&self) -> String {
        let mut out = self.lux_view.clone();
        if !out.ends_with('\n') {
            out.push('\n');
        }
        if let Some(footer) = &self.timing_footer {
            out.push_str(footer);
            out.push('\n');
        }
        out
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_vec(out: &mut Vec<u8>, items: &[String]) {
    out.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for s in items {
        put_str(out, s);
    }
}

fn put_opt(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
        None => out.push(0),
    }
}

/// Bounds-checked reader over a widget payload. Every accessor returns
/// `Err` on truncation; element counts are validated against the remaining
/// buffer so a hostile length prefix cannot trigger a huge allocation.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated widget payload at byte {}", self.pos))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| "non-UTF-8 string in payload".to_string())
    }

    fn vec(&mut self) -> Result<Vec<String>, String> {
        let n = self.u32()? as usize;
        // Each element needs at least its 4-byte length prefix.
        if n > self.buf.len().saturating_sub(self.pos) / 4 {
            return Err(format!("element count {n} exceeds remaining payload"));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.str()?);
        }
        Ok(v)
    }

    fn opt(&mut self) -> Result<Option<String>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            t => Err(format!("invalid option tag {t}")),
        }
    }
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::luxframe::LuxDataFrame;
    use lux_dataframe::prelude::*;

    fn widget() -> crate::widget::Widget {
        let df = DataFrameBuilder::new()
            .float("a", (0..20).map(|i| i as f64))
            .float("b", (0..20).map(|i| (20 - i) as f64))
            .str("g", (0..20).map(|i| if i % 2 == 0 { "x" } else { "y" }))
            .build()
            .unwrap();
        LuxDataFrame::new(df).print()
    }

    #[test]
    fn tabs_and_lux_view() {
        let w = widget();
        assert!(w.tabs().contains(&"Correlation"));
        let view = w.render_lux_view(1);
        assert!(view.contains("=== Correlation"));
        assert!(view.contains("score:"));
    }

    #[test]
    fn display_defaults_to_table() {
        let w = widget();
        let s = w.to_string();
        assert!(s.contains("rows x"));
        assert!(s.contains("recommendation tab(s)"));
    }

    #[test]
    fn vega_export_is_valid_shape() {
        let w = widget();
        let json = w.to_vega_lite();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"$schema\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn save_report_writes_files() {
        let w = widget();
        let dir = std::env::temp_dir().join("lux_widget_test");
        std::fs::create_dir_all(&dir).unwrap();
        let html = dir.join("report.html");
        let json = dir.join("charts.json");
        w.save_html(&html).unwrap();
        w.save_vega_lite(&json).unwrap();
        assert!(std::fs::read_to_string(&html)
            .unwrap()
            .contains("vegaEmbed"));
        assert!(std::fs::read_to_string(&json).unwrap().contains("$schema"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn html_report_embeds_charts() {
        let w = widget();
        let html = w.to_html();
        assert!(html.contains("vegaEmbed"));
        assert!(html.contains("<h3>Correlation</h3>"));
    }

    #[test]
    fn wire_widget_roundtrips() {
        let w = widget();
        let wire = super::WireWidget::from_widget(&w, 1);
        assert!(wire.tabs.iter().any(|t| t == "Correlation"));
        let bytes = wire.encode();
        let back = super::WireWidget::decode(&bytes).expect("round-trip decode");
        assert_eq!(wire, back);
        assert!(back.render().contains("=== Correlation"));
    }

    #[test]
    fn wire_widget_decode_rejects_truncation_without_panic() {
        let bytes = super::WireWidget::from_widget(&widget(), 1).encode();
        for cut in 0..bytes.len().min(64) {
            assert!(super::WireWidget::decode(&bytes[..cut]).is_err());
        }
        // Torn mid-payload at every eighth offset too (cheap full sweep).
        for cut in (64..bytes.len()).step_by(8) {
            assert!(super::WireWidget::decode(&bytes[..cut]).is_err());
        }
        // Trailing garbage is also rejected.
        let mut extended = bytes.clone();
        extended.push(0xFF);
        assert!(super::WireWidget::decode(&extended).is_err());
    }
}
