//! The "widget": what printing a LuxDataFrame produces.
//!
//! The paper's widget is an ipywidgets HTML element with a toggle between
//! the pandas table and tabs of recommended visualizations. Headless here:
//! the widget holds the table text, the ranked [`ActionResult`] tabs, and
//! any intent diagnostics, and renders them as text, Vega-Lite JSON, or a
//! standalone HTML report (the paper's §10.3 export path).

use std::sync::Arc;

use lux_engine::PassTrace;
use lux_intent::{Diagnostic, Severity};
use lux_recs::{ActionHealth, ActionResult};
use lux_vis::render::{ascii, vega};

use crate::perf::PassSummary;

/// The output of [`crate::LuxDataFrame::print`].
pub struct Widget {
    table: String,
    results: Arc<Vec<ActionResult>>,
    health: Arc<Vec<ActionHealth>>,
    diagnostics: Vec<Diagnostic>,
    num_rows: usize,
    num_columns: usize,
    trace: Option<Arc<PassTrace>>,
    /// One-line summary of resource-governor degradations during the pass
    /// (`None` when everything ran exact within budget).
    governor_note: Option<String>,
    /// Set when admission control shed the pass: the engine was too busy to
    /// run recommendations, so the widget degrades to the plain table plus
    /// this reason (never a panic or a hang).
    shed_note: Option<String>,
}

impl Widget {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        table: String,
        results: Arc<Vec<ActionResult>>,
        health: Arc<Vec<ActionHealth>>,
        diagnostics: Vec<Diagnostic>,
        num_rows: usize,
        num_columns: usize,
        trace: Option<Arc<PassTrace>>,
        governor_note: Option<String>,
    ) -> Widget {
        Widget {
            table,
            results,
            health,
            diagnostics,
            num_rows,
            num_columns,
            trace,
            governor_note,
            shed_note: None,
        }
    }

    /// A well-formed "engine busy" widget: the table view with no
    /// recommendation tabs, produced when admission control sheds the pass
    /// under overload (DESIGN.md §10). Still a complete widget — display,
    /// export, and the timing footer all work.
    pub(crate) fn busy(
        table: String,
        diagnostics: Vec<Diagnostic>,
        num_rows: usize,
        num_columns: usize,
        trace: Option<Arc<PassTrace>>,
        shed_note: String,
    ) -> Widget {
        Widget {
            table,
            results: Arc::new(Vec::new()),
            health: Arc::new(Vec::new()),
            diagnostics,
            num_rows,
            num_columns,
            trace,
            governor_note: None,
            shed_note: Some(shed_note),
        }
    }

    /// The span tree of the pass that produced this widget.
    pub fn trace(&self) -> Option<&Arc<PassTrace>> {
        self.trace.as_ref()
    }

    /// The resource-governor marker for this pass: which steps degraded and
    /// why, or `None` when the pass ran entirely exact within its budget.
    pub fn governor_note(&self) -> Option<&str> {
        self.governor_note.as_deref()
    }

    /// Why admission control shed this pass, or `None` when it ran
    /// normally. A shed widget has a table but no recommendation tabs.
    pub fn shed_note(&self) -> Option<&str> {
        self.shed_note.as_deref()
    }

    /// Whether this pass was shed by admission control (engine busy).
    pub fn was_shed(&self) -> bool {
        self.shed_note.is_some()
    }

    /// The one-line per-pass timing footer (`None` for untraced widgets).
    pub fn timing_footer(&self) -> Option<String> {
        self.trace
            .as_ref()
            .map(|t| PassSummary::from_trace(t).footer())
    }

    /// The plain table view (the pandas-equivalent default display).
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The recommendation tabs, cheapest action first.
    pub fn results(&self) -> &[ActionResult] {
        &self.results
    }

    /// Intent diagnostics (empty when the intent validates cleanly).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Per-action health of the pass that produced these tabs: degraded,
    /// failed, and breaker-disabled actions carry their reasons.
    pub fn health(&self) -> &[ActionHealth] {
        &self.health
    }

    /// Health entries that are not plain `ok`.
    pub fn health_problems(&self) -> Vec<&ActionHealth> {
        self.health.iter().filter(|h| !h.status.is_ok()).collect()
    }

    /// Tab names, in display order.
    pub fn tabs(&self) -> Vec<&str> {
        self.results.iter().map(|r| r.action.as_str()).collect()
    }

    /// Render the "Lux view": every tab with its top visualizations drawn
    /// as terminal charts. `per_tab` caps how many charts each tab shows.
    pub fn render_lux_view(&self, per_tab: usize) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let tag = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            out.push_str(&format!("[{tag}] {}", d.message));
            if let Some(s) = &d.suggestion {
                out.push_str(&format!(" (did you mean {s:?}?)"));
            }
            out.push('\n');
        }
        for h in self.health_problems() {
            out.push_str(&format!("(!) action {h}\n"));
        }
        if let Some(note) = &self.governor_note {
            out.push_str(&format!("(~) {note}\n"));
        }
        if let Some(note) = &self.shed_note {
            out.push_str(&format!("(!) engine busy: {note}\n"));
            out.push_str(&self.table);
            return out;
        }
        if self.results.is_empty() {
            out.push_str("(no recommendations: showing table view)\n");
            out.push_str(&self.table);
            return out;
        }
        for r in self.results.iter() {
            let degraded = if r.degraded { ", degraded" } else { "" };
            out.push_str(&format!(
                "\n=== {} [{}] ({} vis, est. cost {:.0}{degraded}) ===\n",
                r.action,
                r.class.name(),
                r.vislist.len(),
                r.estimated_cost
            ));
            for vis in r.vislist.iter().take(per_tab) {
                out.push_str(&ascii::render(vis));
                out.push_str(&format!("score: {:.3}\n", vis.score));
            }
        }
        out
    }

    /// Full Vega-Lite JSON for every recommended visualization, grouped by
    /// action — the machine-readable export.
    pub fn to_vega_lite(&self) -> String {
        let mut parts = Vec::new();
        for r in self.results.iter() {
            let specs: Vec<String> = r.vislist.iter().map(vega::to_vega_lite).collect();
            parts.push(format!(
                "{{\"action\": \"{}\", \"charts\": [{}]}}",
                r.action,
                specs.join(", ")
            ));
        }
        format!("[{}]", parts.join(", "))
    }

    /// A standalone HTML report embedding the Vega-Lite charts (paper
    /// §10.3: "various options for export, from static HTML reports...").
    pub fn to_html(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!(
            "<h2>Dataframe: {} rows × {} columns</h2>\n<pre>{}</pre>\n",
            self.num_rows,
            self.num_columns,
            html_escape(&self.table)
        ));
        for r in self.results.iter() {
            body.push_str(&format!("<h3>{}</h3>\n", html_escape(&r.action)));
            for (i, vis) in r.vislist.iter().enumerate() {
                let div = format!("vis_{}_{}", sanitize(&r.action), i);
                body.push_str(&format!(
                    "<div id=\"{div}\"></div>\n<script>vegaEmbed('#{div}', {});</script>\n",
                    vega::to_vega_lite(vis)
                ));
            }
        }
        format!(
            "<!DOCTYPE html>\n<html><head>\n<script src=\"https://cdn.jsdelivr.net/npm/vega@5\"></script>\n<script src=\"https://cdn.jsdelivr.net/npm/vega-lite@5\"></script>\n<script src=\"https://cdn.jsdelivr.net/npm/vega-embed@6\"></script>\n</head><body>\n{body}</body></html>\n"
        )
    }
}

impl Widget {
    /// Write the standalone HTML report to a file (§10.3 downstream
    /// reporting: "various options for export, from static HTML reports").
    pub fn save_html(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_html())
    }

    /// Write the grouped Vega-Lite JSON to a file.
    pub fn save_vega_lite(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_vega_lite())
    }
}

impl std::fmt::Display for Widget {
    /// Default display: the table view plus a hint line — mirroring the
    /// paper's default-to-table behavior with a toggle to the Lux view.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.table)?;
        if !self.results.is_empty() {
            writeln!(
                f,
                "[{} recommendation tab(s): {}]",
                self.results.len(),
                self.tabs().join(", ")
            )?;
        }
        let problems = self.health_problems();
        if !problems.is_empty() {
            let notes: Vec<String> = problems
                .iter()
                .map(|h| format!("{}: {}", h.action, h.status.name()))
                .collect();
            writeln!(f, "[action health: {}]", notes.join(", "))?;
        }
        if let Some(note) = &self.governor_note {
            writeln!(f, "[{note}]")?;
        }
        if let Some(note) = &self.shed_note {
            writeln!(f, "[engine busy: {note}]")?;
        }
        if let Some(footer) = self.timing_footer() {
            writeln!(f, "{footer}")?;
        }
        Ok(())
    }
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::luxframe::LuxDataFrame;
    use lux_dataframe::prelude::*;

    fn widget() -> crate::widget::Widget {
        let df = DataFrameBuilder::new()
            .float("a", (0..20).map(|i| i as f64))
            .float("b", (0..20).map(|i| (20 - i) as f64))
            .str("g", (0..20).map(|i| if i % 2 == 0 { "x" } else { "y" }))
            .build()
            .unwrap();
        LuxDataFrame::new(df).print()
    }

    #[test]
    fn tabs_and_lux_view() {
        let w = widget();
        assert!(w.tabs().contains(&"Correlation"));
        let view = w.render_lux_view(1);
        assert!(view.contains("=== Correlation"));
        assert!(view.contains("score:"));
    }

    #[test]
    fn display_defaults_to_table() {
        let w = widget();
        let s = w.to_string();
        assert!(s.contains("rows x"));
        assert!(s.contains("recommendation tab(s)"));
    }

    #[test]
    fn vega_export_is_valid_shape() {
        let w = widget();
        let json = w.to_vega_lite();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"$schema\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn save_report_writes_files() {
        let w = widget();
        let dir = std::env::temp_dir().join("lux_widget_test");
        std::fs::create_dir_all(&dir).unwrap();
        let html = dir.join("report.html");
        let json = dir.join("charts.json");
        w.save_html(&html).unwrap();
        w.save_vega_lite(&json).unwrap();
        assert!(std::fs::read_to_string(&html)
            .unwrap()
            .contains("vegaEmbed"));
        assert!(std::fs::read_to_string(&json).unwrap().contains("$schema"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn html_report_embeds_charts() {
        let w = widget();
        let html = w.to_html();
        assert!(html.contains("vegaEmbed"));
        assert!(html.contains("<h3>Correlation</h3>"));
    }
}
