//! [`LuxDataFrame`]: the always-on wrapper (paper §7).
//!
//! `LuxDataFrame` wraps a [`DataFrame`] and mirrors its operations while
//! storing the extra state Lux needs — intent, semantic-type overrides, the
//! action registry, and the WFLOW cache. The WFLOW optimization (§8.2) is
//! implemented here:
//!
//! - **lazy**: metadata and recommendations are computed only at
//!   [`LuxDataFrame::print`] time;
//! - **expiry**: every data-changing operation derives a *new* wrapper with
//!   an empty cache, so stale results can never be shown;
//! - **memoization**: repeated prints of an unmodified frame reuse the
//!   cached metadata, sample, and recommendations.
//!
//! When `config.wflow` is off (the paper's `no-opt` baseline), every wrapped
//! operation eagerly recomputes metadata and recommendations, reproducing a
//! naive always-on implementation.

use std::collections::HashMap;
use std::sync::Arc;

use std::sync::Mutex;

use lux_dataframe::prelude::*;
use lux_engine::sync::lock_recover;
use lux_engine::trace::{
    names as metric, MetricsRegistry, MetricsSnapshot, SpanId, TraceCollector,
};
use lux_engine::{
    Admission, AdmissionController, AdmitRequest, BudgetHandle, CachedSample, DegradeLevel,
    FlightRecorder, FlightSample, FrameMeta, LuxConfig, PassTrace, Priority, SemanticType,
    ShedReason,
};
use lux_intent::{Clause, Diagnostic};
use lux_recs::{ActionContext, ActionHealth, ActionRegistry, ActionResult};
use lux_vis::{Vis, VisSpec};

use crate::logging::{EventKind, SessionLogger};
use crate::perf::PassSummary;
use crate::widget::Widget;

/// Cached per-frame state for the WFLOW optimization.
#[derive(Default)]
struct WflowCache {
    meta: Option<Arc<FrameMeta>>,
    recommendations: Option<Arc<Vec<ActionResult>>>,
    /// Per-action health from the pass that produced `recommendations`.
    health: Option<Arc<Vec<ActionHealth>>>,
}

/// Caller-supplied options for one print pass, used by the serving layer to
/// propagate per-request context into the engine. `deadline` is end-to-end:
/// it bounds the admission wait, and whatever is left after queueing caps the
/// per-action compute budget. `tenant` charges the pass against that
/// tenant's admission quota.
#[derive(Debug, Clone, Default)]
pub struct PrintOptions {
    /// End-to-end deadline for the pass (admission wait + compute).
    pub deadline: Option<std::time::Duration>,
    /// Tenant label for per-tenant admission quotas and SLO metrics.
    pub tenant: Option<String>,
    /// Wire-propagated request id (client-supplied or server-minted). Tagged
    /// onto the root span as `request.id` so the trace, the pass-summary
    /// JSONL event, and any flight-recorder dump are attributable end to end.
    pub request_id: Option<String>,
}

impl PrintOptions {
    /// Builder-style deadline setter.
    pub fn with_deadline(mut self, deadline: Option<std::time::Duration>) -> PrintOptions {
        self.deadline = deadline;
        self
    }

    /// Builder-style tenant setter.
    pub fn with_tenant(mut self, tenant: Option<String>) -> PrintOptions {
        self.tenant = tenant;
        self
    }

    /// Builder-style request-id setter.
    pub fn with_request_id(mut self, request_id: Option<String>) -> PrintOptions {
        self.request_id = request_id;
        self
    }
}

/// A pandas-style dataframe with always-on visualization recommendations.
pub struct LuxDataFrame {
    df: Arc<DataFrame>,
    intent: Vec<Clause>,
    config: Arc<LuxConfig>,
    registry: Arc<ActionRegistry>,
    overrides: HashMap<String, SemanticType>,
    cache: Mutex<WflowCache>,
    sample: CachedSample,
    exported: Mutex<Vec<Vis>>,
    logger: Option<Arc<SessionLogger>>,
    /// Span tree of the most recent print pass on this frame.
    last_trace: Mutex<Option<Arc<PassTrace>>>,
}

impl LuxDataFrame {
    /// Wrap an existing frame with the default config and actions.
    pub fn new(df: DataFrame) -> LuxDataFrame {
        Self::with_config(df, Arc::new(LuxConfig::default()))
    }

    /// Wrap with an explicit config (used by the benchmark conditions).
    pub fn with_config(df: DataFrame, config: Arc<LuxConfig>) -> LuxDataFrame {
        Self::assemble(
            df,
            Vec::new(),
            config,
            Arc::new(ActionRegistry::with_defaults()),
            HashMap::new(),
        )
    }

    /// Read a CSV file into a wrapped frame.
    pub fn read_csv(path: &std::path::Path) -> Result<LuxDataFrame> {
        Ok(Self::new(lux_dataframe::csv::read_csv_path(path)?))
    }

    /// Parse CSV text into a wrapped frame.
    pub fn read_csv_str(text: &str) -> Result<LuxDataFrame> {
        Ok(Self::new(lux_dataframe::csv::read_csv_str(text)?))
    }

    /// Read a CSV file leniently: malformed records are repaired (padded,
    /// truncated, or quote-closed) instead of failing the whole load, and
    /// every repair is listed in the returned
    /// [`ParseReport`](lux_dataframe::csv::ParseReport).
    pub fn read_csv_permissive(
        path: &std::path::Path,
    ) -> Result<(LuxDataFrame, lux_dataframe::csv::ParseReport)> {
        let (df, report) = lux_dataframe::csv::read_csv_path_permissive(path)?;
        Ok((Self::new(df), report))
    }

    /// Parse CSV text leniently; see [`LuxDataFrame::read_csv_permissive`].
    pub fn read_csv_str_permissive(
        text: &str,
    ) -> Result<(LuxDataFrame, lux_dataframe::csv::ParseReport)> {
        let (df, report) = lux_dataframe::csv::read_csv_str_permissive(text)?;
        Ok((Self::new(df), report))
    }

    fn assemble(
        df: DataFrame,
        intent: Vec<Clause>,
        config: Arc<LuxConfig>,
        registry: Arc<ActionRegistry>,
        overrides: HashMap<String, SemanticType>,
    ) -> LuxDataFrame {
        let sample = CachedSample::new(config.sample_cap, config.sample_seed);
        let ldf = LuxDataFrame {
            df: Arc::new(df),
            intent,
            config,
            registry,
            overrides,
            cache: Mutex::new(WflowCache::default()),
            sample,
            exported: Mutex::new(Vec::new()),
            logger: None,
            last_trace: Mutex::new(None),
        };
        if !ldf.config.wflow {
            // no-opt baseline: recompute everything eagerly on every
            // operation that produces a frame.
            let _ = ldf.compute_recommendations();
        }
        ldf
    }

    /// Derive a wrapper around a transformed frame: intent, config, registry,
    /// overrides and logger propagate; the cache starts empty (metadata
    /// expired). The derived operation is logged.
    fn wrap(&self, df: DataFrame) -> LuxDataFrame {
        let mut derived = Self::assemble(
            df,
            self.intent.clone(),
            Arc::clone(&self.config),
            Arc::clone(&self.registry),
            self.overrides.clone(),
        );
        derived.logger = self.logger.clone();
        if let (Some(log), Some(event)) = (&self.logger, derived.df.history().last()) {
            log.log(EventKind::Operation, event.detail.clone(), None);
        }
        derived
    }

    /// Attach a usage logger (the paper's lux-logger analogue); propagated
    /// to every frame derived from this one.
    pub fn attach_logger(&mut self, logger: Arc<SessionLogger>) {
        self.logger = Some(logger);
    }

    // ------------------------------------------------------------------
    // State accessors
    // ------------------------------------------------------------------

    /// The wrapped dataframe.
    pub fn data(&self) -> &DataFrame {
        &self.df
    }

    pub fn num_rows(&self) -> usize {
        self.df.num_rows()
    }

    pub fn num_columns(&self) -> usize {
        self.df.num_columns()
    }

    pub fn column_names(&self) -> &[String] {
        self.df.column_names()
    }

    /// The underlying frame's identity fingerprint (shared by clones; the
    /// key of the process-wide processed-vis memo).
    pub fn fingerprint(&self) -> u64 {
        self.df.fingerprint()
    }

    /// The active config.
    pub fn config(&self) -> &LuxConfig {
        &self.config
    }

    /// The current intent.
    pub fn intent(&self) -> &[Clause] {
        &self.intent
    }

    /// Set the intent from parsed clauses. Expires cached recommendations
    /// but not metadata (the data did not change).
    pub fn set_intent(&mut self, intent: Vec<Clause>) {
        if let Some(log) = &self.logger {
            log.log(
                EventKind::IntentChanged,
                format!("{} clause(s)", intent.len()),
                None,
            );
        }
        self.intent = intent;
        self.expire_recommendations();
    }

    /// Set the intent from strings (`df.intent = ["Age", "Dept=Sales"]`).
    pub fn set_intent_strs<S: AsRef<str>, I: IntoIterator<Item = S>>(
        &mut self,
        intent: I,
    ) -> Result<()> {
        self.set_intent(lux_intent::parse_intent(intent)?);
        Ok(())
    }

    /// Clear the intent.
    pub fn clear_intent(&mut self) {
        self.set_intent(Vec::new());
    }

    /// Override the inferred semantic type of a column (§8.1). Expires both
    /// metadata and recommendations.
    pub fn set_data_type(&mut self, column: &str, semantic: SemanticType) -> Result<()> {
        if !self.df.has_column(column) {
            return Err(Error::ColumnNotFound(column.to_string()));
        }
        self.overrides.insert(column.to_string(), semantic);
        let mut cache = lock_recover(&self.cache);
        cache.meta = None;
        cache.recommendations = None;
        cache.health = None;
        Ok(())
    }

    /// Register a custom action (paper §7.2). Expires recommendations.
    pub fn register_action<A: lux_recs::Action + 'static>(&mut self, action: A) {
        let mut registry = ActionRegistry::new();
        for a in self.registry.actions() {
            registry.register_arc(Arc::clone(a));
        }
        registry.register(action);
        self.registry = Arc::new(registry);
        self.expire_recommendations();
    }

    /// Remove an action by name. Expires recommendations.
    pub fn remove_action(&mut self, name: &str) -> bool {
        let mut registry = ActionRegistry::new();
        for a in self.registry.actions() {
            registry.register_arc(Arc::clone(a));
        }
        let removed = registry.remove(name);
        self.registry = Arc::new(registry);
        if removed {
            self.expire_recommendations();
        }
        removed
    }

    // ------------------------------------------------------------------
    // Metadata & recommendations (the WFLOW-managed state)
    // ------------------------------------------------------------------

    /// The frame's metadata, computed on first use and memoized (when
    /// `wflow` is on). Every access counts as a memo query in the
    /// process-wide metrics (`lux.wflow.meta_memo_*`).
    pub fn metadata(&self) -> Arc<FrameMeta> {
        self.metadata_traced(None, None)
    }

    /// [`LuxDataFrame::metadata`] recording per-column spans and the memo
    /// hit/miss tag under `trace` when attached, and charging the pass
    /// governor for its scans when one is attached.
    fn metadata_traced(
        &self,
        trace: Option<(&TraceCollector, SpanId)>,
        governor: Option<&BudgetHandle>,
    ) -> Arc<FrameMeta> {
        let metrics = MetricsRegistry::global();
        let tag_memo = |outcome: &str| {
            if let Some((collector, id)) = trace {
                collector.tag(id, "memo", outcome);
            }
        };
        if self.config.wflow {
            let mut cache = lock_recover(&self.cache);
            if let Some(meta) = &cache.meta {
                metrics.incr(metric::META_MEMO_HIT);
                tag_memo("hit");
                return Arc::clone(meta);
            }
            metrics.incr(metric::META_MEMO_MISS);
            tag_memo("miss");
            let computed = std::time::Instant::now();
            let meta = Arc::new(FrameMeta::compute_governed_par(
                &self.df,
                &self.overrides,
                trace,
                governor,
                self.config.effective_threads(),
            ));
            metrics.observe(metric::METADATA_LATENCY, computed.elapsed());
            cache.meta = Some(Arc::clone(&meta));
            meta
        } else {
            metrics.incr(metric::META_MEMO_MISS);
            tag_memo("off");
            let computed = std::time::Instant::now();
            let meta = Arc::new(FrameMeta::compute_governed_par(
                &self.df,
                &self.overrides,
                trace,
                governor,
                self.config.effective_threads(),
            ));
            metrics.observe(metric::METADATA_LATENCY, computed.elapsed());
            meta
        }
    }

    /// True when memoized recommendations are available.
    pub fn is_fresh(&self) -> bool {
        lock_recover(&self.cache).recommendations.is_some()
    }

    fn expire_recommendations(&self) {
        let mut cache = lock_recover(&self.cache);
        cache.recommendations = None;
        cache.health = None;
    }

    /// Validate the current intent against the frame.
    pub fn validate_intent(&self) -> Vec<Diagnostic> {
        lux_intent::validate(&self.intent, &self.metadata())
    }

    /// Compile the current intent into complete specs. Invalid intents
    /// compile to no specs (the widget shows the diagnostics instead).
    pub fn compiled_intent(&self) -> Vec<VisSpec> {
        let meta = self.metadata();
        let diags = lux_intent::validate(&self.intent, &meta);
        if self.intent.is_empty() || lux_intent::has_errors(&diags) {
            return Vec::new();
        }
        let opts = lux_intent::CompileOptions {
            max_filter_expansions: self.config.max_filter_expansions,
            histogram_bins: self.config.histogram_bins,
            ..Default::default()
        };
        lux_intent::compile(&self.intent, &meta, &opts).unwrap_or_default()
    }

    fn compute_recommendations(&self) -> (Arc<Vec<ActionResult>>, Arc<Vec<ActionHealth>>) {
        self.compute_recommendations_traced(None, None, None)
    }

    fn compute_recommendations_traced(
        &self,
        trace: Option<(&Arc<TraceCollector>, SpanId)>,
        governor: Option<&Arc<BudgetHandle>>,
        config_override: Option<&Arc<LuxConfig>>,
    ) -> (Arc<Vec<ActionResult>>, Arc<Vec<ActionHealth>>) {
        // A caller-supplied config (deadline-shrunk action budget from a
        // propagated client deadline) replaces the frame's own for this one
        // pass; everything memoized (metadata, sample) is config-independent.
        let config = config_override.unwrap_or(&self.config);
        let meta = self.metadata();
        let specs = match trace {
            Some((collector, parent)) => {
                collector.time(Some(parent), "intent.compile", || self.compiled_intent())
            }
            None => self.compiled_intent(),
        };
        let sample = config.prune.then(|| self.sample.get(&self.df));
        let report = if config.r#async {
            // Owned executor: the frame is shared by Arc with detached
            // workers, which lets the collector abandon hung actions at the
            // hard cutoff instead of waiting on them.
            let owned = lux_recs::OwnedContext {
                df: Arc::clone(&self.df),
                meta,
                intent: Arc::new(self.intent.clone()),
                intent_specs: Arc::new(specs),
                config: Arc::clone(config),
                sample,
                trace: trace
                    .map(|(collector, span)| lux_recs::TraceCtx::new(Arc::clone(collector), span)),
                governor: governor.cloned(),
                // The caller (print) already holds the pass's admission
                // slot and blocks on collect_report, so none is threaded.
                permit: None,
            };
            lux_recs::run_actions_streaming(&self.registry, owned).collect_report()
        } else {
            let ctx = ActionContext {
                df: &self.df,
                meta: &meta,
                intent: &self.intent,
                intent_specs: &specs,
                config,
            };
            lux_recs::run_actions_report_governed(
                &self.registry,
                &ctx,
                sample.as_deref(),
                None,
                trace,
                governor,
            )
        };
        if let Some(log) = &self.logger {
            for h in report.problems() {
                log.log(EventKind::ActionFault, h.to_string(), None);
            }
        }
        (Arc::new(report.results), Arc::new(report.health))
    }

    fn recommendations_with_health(&self) -> (Arc<Vec<ActionResult>>, Arc<Vec<ActionHealth>>) {
        self.recommendations_with_health_traced(None, None, None)
    }

    fn recommendations_with_health_traced(
        &self,
        trace: Option<(&Arc<TraceCollector>, SpanId)>,
        governor: Option<&Arc<BudgetHandle>>,
        config_override: Option<&Arc<LuxConfig>>,
    ) -> (Arc<Vec<ActionResult>>, Arc<Vec<ActionHealth>>) {
        let metrics = MetricsRegistry::global();
        let tag_memo = |outcome: &str| {
            if let Some((collector, id)) = trace {
                collector.tag(id, "memo", outcome);
            }
        };
        if self.config.wflow {
            {
                let cache = lock_recover(&self.cache);
                if let (Some(recs), Some(health)) = (&cache.recommendations, &cache.health) {
                    metrics.incr(metric::MEMO_HIT);
                    tag_memo("hit");
                    return (Arc::clone(recs), Arc::clone(health));
                }
            } // release while computing (compute re-takes for meta)
            metrics.incr(metric::MEMO_MISS);
            tag_memo("miss");
            let (recs, health) =
                self.compute_recommendations_traced(trace, governor, config_override);
            // A deadline-shrunk pass that degraded must not poison the memo:
            // the next print with a full budget would otherwise replay the
            // partial results forever. Clean passes cache as usual.
            let cacheable = config_override.is_none() || health.iter().all(|h| h.status.is_ok());
            if cacheable {
                let mut cache = lock_recover(&self.cache);
                cache.recommendations = Some(Arc::clone(&recs));
                cache.health = Some(Arc::clone(&health));
            } else {
                tag_memo("skip-degraded");
            }
            (recs, health)
        } else {
            metrics.incr(metric::MEMO_MISS);
            tag_memo("off");
            self.compute_recommendations_traced(trace, governor, config_override)
        }
    }

    /// The ranked recommendations, computed lazily and memoized under WFLOW.
    pub fn recommendations(&self) -> Arc<Vec<ActionResult>> {
        self.recommendations_with_health().0
    }

    /// Per-action health of the most recent recommendation pass (computing
    /// one if needed): which actions served exact results, which degraded to
    /// partial ones, which failed and why, and which the circuit breaker has
    /// disabled. Memoized alongside the recommendations under WFLOW.
    pub fn action_health(&self) -> Arc<Vec<ActionHealth>> {
        self.recommendations_with_health().1
    }

    /// Begin a streaming recommendation run: dispatches every applicable
    /// action onto background workers (cheapest first) and returns
    /// immediately — the ASYNC experience of §8.2, where "recommendation
    /// results can be streamed into the frontend widget as the computation
    /// for each action completes". Bypasses the WFLOW memo (results go to
    /// the caller, not the cache).
    pub fn recommendations_streaming(&self) -> lux_recs::generate::StreamingRun {
        // Background priority: streaming runs yield to interactive prints
        // and retry with jittered backoff before giving up. The jitter seed
        // derives from the frame shape so threads=1 runs stay deterministic.
        let seed = (self.df.num_rows() as u64) << 16 ^ self.df.num_columns() as u64;
        let permit =
            match AdmissionController::global().admit_with_retry(Priority::Background, seed) {
                Admission::Granted(p) => Arc::new(p),
                Admission::Shed(shed) => {
                    if let Some(log) = &self.logger {
                        log.log(
                            EventKind::ActionFault,
                            format!("shed: {}", shed.reason),
                            None,
                        );
                    }
                    return lux_recs::generate::StreamingRun::shed(&shed.reason);
                }
            };
        let meta = self.metadata();
        let specs = self.compiled_intent();
        let sample = self.config.prune.then(|| self.sample.get(&self.df));
        // Each streaming run is its own pass; open a fresh budget, shaped
        // by current admission pressure and charged to the global ledger.
        let (budget, floor) = permit.shape_budget(&self.config.budget);
        let governor = Arc::new(BudgetHandle::governed(budget, permit.ledger(), floor));
        let owned = lux_recs::generate::OwnedContext {
            df: Arc::clone(&self.df),
            meta,
            intent: Arc::new(self.intent.clone()),
            intent_specs: Arc::new(specs),
            config: Arc::clone(&self.config),
            sample,
            trace: None,
            governor: Some(governor),
            permit: Some(permit),
        };
        lux_recs::generate::run_actions_streaming(&self.registry, owned)
    }

    /// The full span tree of the most recent [`LuxDataFrame::print`] on this
    /// frame, or `None` before the first print. Export with
    /// [`PassTrace::to_chrome_json`] or inspect with
    /// [`PassTrace::render_text`].
    pub fn last_trace(&self) -> Option<Arc<PassTrace>> {
        lock_recover(&self.last_trace).clone()
    }

    /// Point-in-time snapshot of the process-wide engine metrics: prints,
    /// WFLOW memo hit rates, PRUNE activation, action latency percentiles,
    /// and circuit-breaker trips (see `lux_engine::trace::names`).
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsRegistry::global().snapshot()
    }

    /// "Print" the dataframe: the always-on entry point. Returns the widget
    /// holding the table view, the recommendation tabs, and any intent
    /// diagnostics. Never fails — internal errors degrade to the plain
    /// table (§10.3 fail-safe behavior).
    ///
    /// Every print records a full [`PassTrace`] (kept on the frame, see
    /// [`LuxDataFrame::last_trace`]) and updates the process-wide metrics.
    pub fn print(&self) -> Widget {
        self.print_with(&PrintOptions::default())
    }

    /// [`LuxDataFrame::print`] with caller-supplied admission options: an
    /// end-to-end deadline (covering both the admission wait and the compute
    /// pass — the serving layer propagates each client's deadline here) and
    /// a tenant label charged against the per-tenant admission quota.
    pub fn print_with(&self, opts: &PrintOptions) -> Widget {
        let start = std::time::Instant::now();
        // Admission first: under overload the pass is shed to a well-formed
        // "engine busy" widget instead of piling more work onto a saturated
        // process (DESIGN.md §10). Interactive priority — prints jump the
        // queue ahead of background streaming runs.
        let request = AdmitRequest::new(Priority::Interactive)
            .with_deadline(opts.deadline)
            .with_tenant(opts.tenant.clone());
        let permit = match AdmissionController::global().admit_request(request) {
            Admission::Granted(p) => p,
            Admission::Shed(shed) => return self.print_shed(start, shed, opts),
        };
        // What is left of the client deadline after queueing becomes this
        // pass's action budget ceiling: a pass admitted with 200ms remaining
        // must not run the configured 2s per action. An exhausted deadline
        // sheds before any compute.
        let remaining = opts.deadline.map(|d| d.saturating_sub(permit.waited()));
        if let Some(rem) = remaining {
            if rem < std::time::Duration::from_millis(1) {
                drop(permit);
                let metrics = MetricsRegistry::global();
                metrics.incr(metric::ADMISSION_SHEDS);
                return self.print_shed(
                    start,
                    ShedReason {
                        reason: "deadline exhausted while waiting for a slot".to_string(),
                        priority: Priority::Interactive,
                    },
                    opts,
                );
            }
        }
        let deadline_config = remaining.map(|rem| {
            let mut c = (*self.config).clone();
            c.action_budget = Some(match c.action_budget {
                Some(b) => b.min(rem),
                None => rem,
            });
            Arc::new(c)
        });
        // One budget per pass: every allocation-heavy step below (metadata
        // scans, candidate enumeration, group-by/bin processing) charges
        // this handle and degrades along the ladder instead of exhausting
        // memory (DESIGN.md §8). Under admission pressure the budget is
        // shaped down (shed ladder) and every charge is mirrored into the
        // process-wide ledger.
        let (budget, floor) = permit.shape_budget(&self.config.budget);
        let governor = Arc::new(BudgetHandle::governed(budget, permit.ledger(), floor));
        let collector = TraceCollector::new();
        let root = collector.begin(None, "print");
        collector.tag(
            root,
            "admission.wait_ms",
            permit.waited().as_millis().to_string(),
        );
        collector.tag(root, "admission.pressure", permit.pressure().name());
        if let Some(rem) = remaining {
            collector.tag(root, "deadline.remaining_ms", rem.as_millis().to_string());
        }
        if let Some(tenant) = permit.tenant() {
            collector.tag(root, "admission.tenant", tenant.to_string());
        }
        self.tag_request_context(&collector, root, opts);
        let table = collector.time(Some(root), "table", || self.df.to_table_string(10));
        // Metadata first (and traced): the validate/compile/action stages
        // below all read it through the memo.
        let meta_span = collector.begin(Some(root), "metadata");
        let _ = self.metadata_traced(
            Some((collector.as_ref(), meta_span)),
            Some(governor.as_ref()),
        );
        collector.end(meta_span);
        let diagnostics = collector.time(Some(root), "intent.validate", || self.validate_intent());
        let actions_span = collector.begin(Some(root), "actions");
        let (results, health) = self.recommendations_with_health_traced(
            Some((&collector, actions_span)),
            Some(&governor),
            deadline_config.as_ref(),
        );
        collector.end(actions_span);
        collector.tag(
            root,
            "governor.degrades",
            governor.event_count().to_string(),
        );
        collector.tag(root, "governor.breached", governor.breached().to_string());
        let governor_note = governor.summary();
        if let Some(note) = &governor_note {
            collector.tag(root, "governor.summary", note.clone());
        }
        collector.end(root);
        let trace = Arc::new(collector.snapshot());

        let elapsed = start.elapsed();
        let metrics = MetricsRegistry::global();
        metrics.incr(metric::PRINTS);
        metrics.observe(metric::PRINT_LATENCY, elapsed);
        // Deadline-miss accounting: the pass finished, but after the client's
        // end-to-end budget — the client has likely timed out on its side.
        let deadline_missed = opts.deadline.is_some_and(|d| elapsed > d);
        if deadline_missed {
            metrics.incr(metric::DEADLINE_MISSES);
        }
        // Per-tenant SLO series (request count, latency, queue wait,
        // deadline misses, governor degrades) keyed by the request tenant.
        if let Some(tenant) = opts.tenant.as_deref().or_else(|| permit.tenant()) {
            metrics.incr_tenant(metric::TENANT_REQUESTS, tenant);
            metrics.observe_tenant(metric::TENANT_PASS_LATENCY, tenant, elapsed);
            metrics.observe_tenant(metric::TENANT_QUEUE_WAIT, tenant, permit.waited());
            metrics.add_tenant(
                metric::TENANT_GOVERNOR_DEGRADES,
                tenant,
                governor.event_count() as u64,
            );
            if deadline_missed {
                metrics.incr_tenant(metric::TENANT_DEADLINE_MISSES, tenant);
            }
            // Pre-register the event-driven series at zero so a tenant's
            // SLO catalogue is complete from its first request — scrapers
            // can tell "no sheds yet" from "tenant unknown".
            let _ = metrics.tenant_counter_handle(metric::TENANT_SHEDS, tenant);
            let _ = metrics.tenant_counter_handle(metric::TENANT_DEADLINE_MISSES, tenant);
        }
        let summary = PassSummary::from_trace(&trace);
        if let Some(log) = &self.logger {
            log.log(
                EventKind::Print,
                format!("print {}x{}", self.df.num_rows(), self.df.num_columns()),
                Some(elapsed.as_secs_f64()),
            );
            log.log(
                EventKind::PassSummary,
                summary.to_compact_json(),
                Some(elapsed.as_secs_f64()),
            );
        }
        let governor_skips = governor
            .events()
            .iter()
            .filter(|e| e.level == DegradeLevel::Skipped)
            .count() as u64;
        FlightRecorder::global().record(
            Arc::clone(&trace),
            FlightSample {
                request_id: opts.request_id.clone().unwrap_or_default(),
                tenant: opts.tenant.clone().unwrap_or_default(),
                shed: false,
                deadline_miss: deadline_missed,
                governor_skips,
                summary_json: summary.to_compact_json(),
            },
        );
        *lock_recover(&self.last_trace) = Some(Arc::clone(&trace));
        Widget::new(
            table,
            results,
            health,
            diagnostics,
            self.df.num_rows(),
            self.df.num_columns(),
            Some(trace),
            governor_note,
        )
    }

    /// Tag wire-propagated request context (`request.id` / `request.tenant`)
    /// onto a pass's root span so traces, pass summaries, and flight dumps
    /// stay attributable across the process boundary.
    fn tag_request_context(&self, collector: &TraceCollector, root: SpanId, opts: &PrintOptions) {
        if let Some(id) = &opts.request_id {
            collector.tag(root, "request.id", id.clone());
        }
        if let Some(tenant) = &opts.tenant {
            collector.tag(root, "request.tenant", tenant.clone());
        }
    }

    /// The load-shedding tail of [`LuxDataFrame::print`]: admission refused
    /// the pass, so degrade to the plain table plus a busy note — still a
    /// complete, well-formed widget with a trace and metrics, never a panic
    /// or a hang (§10.3 fail-safe behavior under overload).
    fn print_shed(
        &self,
        start: std::time::Instant,
        shed: ShedReason,
        opts: &PrintOptions,
    ) -> Widget {
        let collector = TraceCollector::new();
        let root = collector.begin(None, "print");
        self.tag_request_context(&collector, root, opts);
        let table = collector.time(Some(root), "table", || self.df.to_table_string(10));
        let diagnostics = collector.time(Some(root), "intent.validate", || self.validate_intent());
        collector.tag(root, "admission.shed", shed.reason.clone());
        collector.tag(root, "admission.priority", shed.priority.name());
        collector.end(root);
        let trace = Arc::new(collector.snapshot());
        let elapsed = start.elapsed();
        let metrics = MetricsRegistry::global();
        metrics.incr(metric::PRINTS);
        metrics.observe(metric::PRINT_LATENCY, elapsed);
        if let Some(tenant) = opts.tenant.as_deref() {
            metrics.incr_tenant(metric::TENANT_REQUESTS, tenant);
            metrics.incr_tenant(metric::TENANT_SHEDS, tenant);
        }
        let summary = PassSummary::from_trace(&trace);
        if let Some(log) = &self.logger {
            log.log(
                EventKind::Print,
                format!(
                    "print {}x{} shed: {}",
                    self.df.num_rows(),
                    self.df.num_columns(),
                    shed.reason
                ),
                Some(elapsed.as_secs_f64()),
            );
            // Sheds emit a PassSummary event too, so the JSONL log carries
            // the shed reason and request attribution for every request.
            log.log(
                EventKind::PassSummary,
                summary.to_compact_json(),
                Some(elapsed.as_secs_f64()),
            );
        }
        FlightRecorder::global().record(
            Arc::clone(&trace),
            FlightSample {
                request_id: opts.request_id.clone().unwrap_or_default(),
                tenant: opts.tenant.clone().unwrap_or_default(),
                shed: true,
                deadline_miss: false,
                governor_skips: 0,
                summary_json: summary.to_compact_json(),
            },
        );
        *lock_recover(&self.last_trace) = Some(Arc::clone(&trace));
        Widget::busy(
            table,
            diagnostics,
            self.df.num_rows(),
            self.df.num_columns(),
            Some(trace),
            shed.reason,
        )
    }

    /// One-shot dataset profile: the metadata overview actions plus a
    /// per-column summary, independent of any intent (the pandas-profiling
    /// / sweetviz-style report the related-work tools produce on demand —
    /// here it is just a convenience over the always-on machinery).
    pub fn profile(&self) -> String {
        let meta = self.metadata();
        let mut out = String::new();
        out.push_str(&format!(
            "# Profile: {} rows x {} columns\n\n",
            self.num_rows(),
            self.num_columns()
        ));
        out.push_str(
            "column                 type         semantic      cardinality  nulls  min..max\n",
        );
        for cm in &meta.columns {
            let range = match (cm.min, cm.max) {
                (Some(lo), Some(hi)) => format!("{lo:.4}..{hi:.4}"),
                _ => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<22} {:<12} {:<13} {:>11}  {:>5}  {}\n",
                cm.name,
                cm.dtype.name(),
                cm.semantic.name(),
                cm.cardinality,
                cm.null_count,
                range
            ));
        }
        out.push('\n');
        out.push_str(&self.print().render_lux_view(1));
        out
    }

    // ------------------------------------------------------------------
    // Export (paper §3: widget -> Vis -> code)
    // ------------------------------------------------------------------

    /// Export a visualization from the printed widget, by action name and
    /// rank. Accessible afterwards via [`LuxDataFrame::exported`].
    pub fn export(&self, action: &str, rank: usize) -> Result<Vis> {
        let recs = self.recommendations();
        let result = recs
            .iter()
            .find(|r| r.action.eq_ignore_ascii_case(action))
            .ok_or_else(|| Error::InvalidArgument(format!("no action named {action:?}")))?;
        let vis = result
            .vislist
            .visualizations
            .get(rank)
            .ok_or_else(|| {
                Error::InvalidArgument(format!(
                    "action {action:?} has {} visualizations, rank {rank} out of range",
                    result.vislist.len()
                ))
            })?
            .clone();
        lock_recover(&self.exported).push(vis.clone());
        if let Some(log) = &self.logger {
            log.log(EventKind::Export, vis.spec.describe(), None);
        }
        Ok(vis)
    }

    /// Visualizations exported so far.
    pub fn exported(&self) -> Vec<Vis> {
        lock_recover(&self.exported).clone()
    }

    // ------------------------------------------------------------------
    // Wrapped dataframe operations (instrumented; cache expires via wrap)
    // ------------------------------------------------------------------

    pub fn filter(&self, column: &str, op: FilterOp, value: &Value) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.filter(column, op, value)?))
    }

    pub fn head(&self, n: usize) -> LuxDataFrame {
        self.wrap(self.df.head(n))
    }

    pub fn tail(&self, n: usize) -> LuxDataFrame {
        self.wrap(self.df.tail(n))
    }

    pub fn sample(&self, n: usize, seed: u64) -> LuxDataFrame {
        self.wrap(self.df.sample(n, seed))
    }

    pub fn select(&self, names: &[&str]) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.select(names)?))
    }

    pub fn drop_columns(&self, names: &[&str]) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.drop_columns(names)?))
    }

    pub fn sort_by(&self, columns: &[&str], ascending: bool) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.sort_by(columns, ascending)?))
    }

    pub fn with_column(&self, name: &str, column: Column) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.with_column(name, column)?))
    }

    pub fn with_column_from<F>(&self, name: &str, source: &str, f: F) -> Result<LuxDataFrame>
    where
        F: Fn(&Value) -> Value,
    {
        Ok(self.wrap(self.df.with_column_from(name, source, f)?))
    }

    pub fn rename(&self, mapping: &[(&str, &str)]) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.rename(mapping)?))
    }

    pub fn dropna(&self) -> LuxDataFrame {
        self.wrap(self.df.dropna())
    }

    pub fn fillna(&self, column: &str, value: &Value) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.fillna(column, value)?))
    }

    pub fn cut(&self, column: &str, labels: &[&str], out: &str) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.cut(column, labels, out)?))
    }

    pub fn groupby_agg(&self, keys: &[&str], specs: &[(&str, Agg)]) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.groupby(keys)?.agg(specs)?))
    }

    pub fn groupby_count(&self, keys: &[&str]) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.groupby(keys)?.count()?))
    }

    pub fn pivot(
        &self,
        index: &str,
        columns: &str,
        values: &str,
        agg: Agg,
    ) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.pivot(index, columns, values, agg)?))
    }

    pub fn crosstab(&self, rows: &str, columns: &str) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.crosstab(rows, columns)?))
    }

    pub fn join(
        &self,
        other: &LuxDataFrame,
        left_on: &str,
        right_on: &str,
        kind: JoinKind,
    ) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.join(&other.df, left_on, right_on, kind)?))
    }

    pub fn concat(&self, other: &LuxDataFrame) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.concat(&other.df)?))
    }

    pub fn describe(&self) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.describe()?))
    }

    pub fn value_counts(&self, column: &str) -> Result<LuxDataFrame> {
        Ok(self.wrap(self.df.value_counts(column)?))
    }

    /// Extract a column as a wrapped series.
    pub fn series(&self, column: &str) -> Result<crate::luxseries::LuxSeries> {
        Ok(crate::luxseries::LuxSeries::from_parts(
            self.df.series(column)?,
            Arc::clone(&self.config),
            Arc::clone(&self.registry),
        ))
    }
}

impl std::fmt::Display for LuxDataFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.print())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lux_recs::ActionClass;

    fn sample_ldf() -> LuxDataFrame {
        let df = DataFrameBuilder::new()
            .float("life", (0..40).map(|i| 60.0 + (i % 20) as f64))
            .float("inequality", (0..40).map(|i| 50.0 - (i % 20) as f64))
            .str("region", (0..40).map(|i| ["EU", "AF", "AS", "NA"][i % 4]))
            .str(
                "tier",
                (0..40).map(|i| if i % 3 == 0 { "high" } else { "low" }),
            )
            .build()
            .unwrap();
        LuxDataFrame::new(df)
    }

    #[test]
    fn print_produces_table_and_recommendations() {
        let ldf = sample_ldf();
        let w = ldf.print();
        assert!(w.table().contains("life"));
        let names: Vec<&str> = w.results().iter().map(|r| r.action.as_str()).collect();
        assert!(names.contains(&"Correlation"));
        assert!(names.contains(&"Distribution"));
        assert!(names.contains(&"Occurrence")); // "tier" is nominal
        assert!(names.contains(&"Geographic")); // "region" matches the geo heuristic
    }

    #[test]
    fn print_with_zero_deadline_sheds_cleanly() {
        let ldf = sample_ldf();
        let opts =
            crate::luxframe::PrintOptions::default().with_deadline(Some(std::time::Duration::ZERO));
        let w = ldf.print_with(&opts);
        assert!(w.was_shed());
        // Either the deadline expired after admission ("deadline exhausted")
        // or — when parallel tests hold all slots — during the wait ("no
        // slot within 0ms"); both are the deadline doing its job.
        let note = w.shed_note().expect("shed widget carries a note");
        assert!(
            note.contains("deadline") || note.contains("no slot within"),
            "unexpected shed note: {note}"
        );
        // A deadline-shed pass must not poison the memo: a follow-up
        // unconstrained print serves full recommendations.
        let w2 = ldf.print();
        assert!(!w2.was_shed());
        assert!(!w2.results().is_empty());
    }

    #[test]
    fn print_with_generous_deadline_serves_normally() {
        let ldf = sample_ldf();
        let opts = crate::luxframe::PrintOptions::default()
            .with_deadline(Some(std::time::Duration::from_secs(120)))
            .with_tenant(Some("t-test".to_string()));
        let w = ldf.print_with(&opts);
        assert!(!w.was_shed());
        assert!(!w.results().is_empty());
        let trace = w.trace().expect("print attaches a trace");
        let rendered = trace.render_text();
        assert!(rendered.contains("deadline.remaining_ms"));
        assert!(rendered.contains("t-test"));
    }

    #[test]
    fn wflow_memoizes_until_modified() {
        let ldf = sample_ldf();
        assert!(!ldf.is_fresh());
        let _ = ldf.print();
        assert!(ldf.is_fresh());
        let r1 = ldf.recommendations();
        let r2 = ldf.recommendations();
        assert!(Arc::ptr_eq(&r1, &r2), "second print must reuse the cache");
        // deriving a frame starts with an expired cache
        let filtered = ldf
            .filter("region", FilterOp::Eq, &Value::str("EU"))
            .unwrap();
        assert!(!filtered.is_fresh());
    }

    #[test]
    fn set_intent_expires_recs_but_not_metadata() {
        let mut ldf = sample_ldf();
        let _ = ldf.print();
        let meta_before = ldf.metadata();
        ldf.set_intent_strs(["life"]).unwrap();
        assert!(!ldf.is_fresh());
        let meta_after = ldf.metadata();
        assert!(Arc::ptr_eq(&meta_before, &meta_after));
    }

    #[test]
    fn intent_drives_intent_actions() {
        let mut ldf = sample_ldf();
        ldf.set_intent_strs(["life", "inequality"]).unwrap();
        let w = ldf.print();
        let names: Vec<&str> = w.results().iter().map(|r| r.action.as_str()).collect();
        assert!(names.contains(&"Current Vis"));
        assert!(names.contains(&"Enhance"));
        assert!(names.contains(&"Filter"));
        assert!(!names.contains(&"Correlation")); // metadata overviews replaced
    }

    #[test]
    fn invalid_intent_falls_back_to_table_with_diagnostics() {
        let mut ldf = sample_ldf();
        ldf.set_intent_strs(["lyfe"]).unwrap();
        let w = ldf.print();
        assert!(!w.diagnostics().is_empty());
        assert!(w.diagnostics()[0].suggestion.as_deref() == Some("life"));
        // no intent actions, but the table still renders
        assert!(w.table().contains("life"));
    }

    #[test]
    fn type_override_changes_recommendations() {
        let df = DataFrameBuilder::new()
            .int("code", (0..50).map(|i| i % 30))
            .float("v", (0..50).map(|i| i as f64))
            .build()
            .unwrap();
        let mut ldf = LuxDataFrame::new(df);
        assert_eq!(
            ldf.metadata().column("code").unwrap().semantic,
            SemanticType::Quantitative
        );
        ldf.set_data_type("code", SemanticType::Nominal).unwrap();
        assert_eq!(
            ldf.metadata().column("code").unwrap().semantic,
            SemanticType::Nominal
        );
        assert!(ldf.set_data_type("nope", SemanticType::Nominal).is_err());
    }

    #[test]
    fn groupby_result_triggers_structure_actions() {
        let ldf = sample_ldf();
        let agg = ldf
            .groupby_agg(&["region"], &[("life", Agg::Mean)])
            .unwrap();
        let w = agg.print();
        let classes: Vec<ActionClass> = w.results().iter().map(|r| r.class).collect();
        assert!(classes.contains(&ActionClass::Structure));
        assert!(classes.contains(&ActionClass::History));
    }

    #[test]
    fn head_triggers_prefilter() {
        let ldf = sample_ldf();
        let small = ldf.head(3);
        let w = small.print();
        let names: Vec<&str> = w.results().iter().map(|r| r.action.as_str()).collect();
        assert!(names.contains(&"Pre-filter"), "got {names:?}");
    }

    #[test]
    fn export_records_vis() {
        let ldf = sample_ldf();
        let _ = ldf.print();
        let vis = ldf.export("Correlation", 0).unwrap();
        assert_eq!(vis.spec.mark, lux_vis::Mark::Scatter);
        assert_eq!(ldf.exported().len(), 1);
        assert!(ldf.export("Correlation", 99).is_err());
        assert!(ldf.export("Nope", 0).is_err());
    }

    #[test]
    fn custom_action_registration() {
        let mut ldf = sample_ldf();
        ldf.register_action(lux_recs::CustomAction::new(
            "Always",
            |_ctx: &ActionContext<'_>| true,
            |ctx: &ActionContext<'_>| {
                Ok(vec![lux_recs::Candidate::new(
                    lux_recs::structure_actions::univariate_spec(
                        &ctx.meta.columns[0].name,
                        ctx.meta.columns[0].semantic,
                        10,
                    ),
                )])
            },
        ));
        let w = ldf.print();
        assert!(w.results().iter().any(|r| r.action == "Always"));
        assert!(ldf.remove_action("Always"));
        let w = ldf.print();
        assert!(!w.results().iter().any(|r| r.action == "Always"));
    }

    #[test]
    fn no_opt_mode_recomputes_every_time() {
        let df = DataFrameBuilder::new()
            .float("x", (0..20).map(|i| i as f64))
            .build()
            .unwrap();
        let ldf = LuxDataFrame::with_config(df, Arc::new(LuxConfig::no_opt()));
        let r1 = ldf.recommendations();
        let r2 = ldf.recommendations();
        assert!(!Arc::ptr_eq(&r1, &r2), "no-opt must not memoize");
    }

    #[test]
    fn profile_summarizes_columns_and_charts() {
        let ldf = sample_ldf();
        let p = ldf.profile();
        assert!(p.contains("40 rows x 4 columns"));
        assert!(p.contains("quantitative"));
        assert!(p.contains("=== ")); // action sections present
    }

    #[test]
    fn logger_records_workflow_events() {
        let mut ldf = sample_ldf();
        let log = crate::logging::SessionLogger::in_memory();
        ldf.attach_logger(Arc::clone(&log));
        let _ = ldf.print();
        ldf.set_intent_strs(["life"]).unwrap();
        let _ = ldf.print();
        let filtered = ldf
            .filter("tier", FilterOp::Eq, &Value::str("low"))
            .unwrap();
        let _ = filtered.print(); // derived frames inherit the logger
        let _ = ldf.export("Current Vis", 0).unwrap();
        use crate::logging::EventKind;
        assert_eq!(log.count_of(EventKind::Print), 3);
        assert_eq!(log.count_of(EventKind::IntentChanged), 1);
        assert_eq!(log.count_of(EventKind::Operation), 1);
        assert_eq!(log.count_of(EventKind::Export), 1);
        assert!(log.to_jsonl().lines().count() >= 6);
    }

    #[test]
    fn csv_roundtrip() {
        let ldf = LuxDataFrame::read_csv_str("a,b\n1,x\n2,y\n").unwrap();
        assert_eq!(ldf.num_rows(), 2);
        assert_eq!(ldf.column_names(), &["a", "b"]);
    }
}
