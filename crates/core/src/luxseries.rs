//! [`LuxSeries`]: the wrapped single-column view.
//!
//! The paper treats Series as one-column dataframes and reuses the same
//! visualization machinery (§6, Series visualizations); printing a series
//! costs far less than printing a frame because the search space is a
//! single column — the effect measured in Table 3's "Print Series" rows.

use std::sync::Arc;

use lux_dataframe::prelude::*;
use lux_engine::LuxConfig;
use lux_recs::ActionRegistry;

use crate::luxframe::LuxDataFrame;
use crate::widget::Widget;

/// A single named column with always-on visualization support.
pub struct LuxSeries {
    series: Series,
    config: Arc<LuxConfig>,
    registry: Arc<ActionRegistry>,
}

impl LuxSeries {
    pub fn new(series: Series) -> LuxSeries {
        LuxSeries {
            series,
            config: Arc::new(LuxConfig::default()),
            registry: Arc::new(ActionRegistry::with_defaults()),
        }
    }

    pub(crate) fn from_parts(
        series: Series,
        config: Arc<LuxConfig>,
        registry: Arc<ActionRegistry>,
    ) -> LuxSeries {
        LuxSeries {
            series,
            config,
            registry,
        }
    }

    pub fn name(&self) -> &str {
        self.series.name()
    }

    pub fn len(&self) -> usize {
        self.series.len()
    }

    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    pub fn dtype(&self) -> DType {
        self.series.dtype()
    }

    /// The underlying series.
    pub fn data(&self) -> &Series {
        &self.series
    }

    /// View as a one-column LuxDataFrame (shares config and actions).
    pub fn to_frame(&self) -> LuxDataFrame {
        // custom actions registered on the parent frame stay available
        let _ = &self.registry;
        LuxDataFrame::with_config(self.series.to_frame(), Arc::clone(&self.config))
    }

    /// Print the series: a one-column frame print, which exercises only the
    /// Series structure action (single-column search space).
    pub fn print(&self) -> Widget {
        self.to_frame().print()
    }
}

impl std::fmt::Display for LuxSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.print())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::luxframe::LuxDataFrame;

    #[test]
    fn series_print_shows_univariate_vis() {
        let df = DataFrameBuilder::new()
            .float("pay", (0..30).map(|i| i as f64))
            .str("dept", (0..30).map(|i| if i % 2 == 0 { "S" } else { "E" }))
            .build()
            .unwrap();
        let ldf = LuxDataFrame::new(df);
        let s = ldf.series("pay").unwrap();
        assert_eq!(s.name(), "pay");
        assert_eq!(s.len(), 30);
        let w = s.print();
        let names: Vec<&str> = w.results().iter().map(|r| r.action.as_str()).collect();
        assert!(names.contains(&"Series"), "got {names:?}");
    }

    #[test]
    fn nominal_series_gets_bar() {
        let df = DataFrameBuilder::new()
            .str("dept", ["S", "E", "S"])
            .build()
            .unwrap();
        let ldf = LuxDataFrame::new(df);
        let s = ldf.series("dept").unwrap();
        let w = s.print();
        let series_result = w.results().iter().find(|r| r.action == "Series").unwrap();
        assert_eq!(
            series_result.vislist.visualizations[0].spec.mark,
            lux_vis::Mark::Bar
        );
    }
}
