//! Usage logging — the reproduction of the paper's `lux-logger` extension.
//!
//! The paper instruments widget interactions and notebook actions to study
//! usage ("based on 514 collected logs of Lux usage...", §9 fn. 2; "logged
//! via a custom extension", §10.1). [`SessionLogger`] records the analogous
//! events here — prints, intent changes, exports, derived operations — as
//! JSON-lines, either in memory or to a file, so deployments can analyze
//! real workflows the same way.

use std::fmt;
use std::io::Write;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use lux_engine::sync::lock_recover;

/// The kinds of events the paper's study cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A dataframe or series print (the always-on trigger).
    Print,
    /// The user set or cleared an intent.
    IntentChanged,
    /// A visualization was exported from the widget.
    Export,
    /// A derived-frame operation (filter, groupby, ...).
    Operation,
    /// An action failed, degraded, or was disabled during a pass (see
    /// `lux-recs::fault`); the detail carries the action name and reason.
    ActionFault,
    /// Per-pass timing summary (see [`crate::perf::PassSummary`]); the
    /// detail is its compact JSON payload, so session logs carry the same
    /// stage/memo numbers the pass trace does.
    PassSummary,
    /// Serving-layer lifecycle: boot, journal recovery, drain, shutdown.
    Server,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Print => "print",
            EventKind::IntentChanged => "intent",
            EventKind::Export => "export",
            EventKind::Operation => "operation",
            EventKind::ActionFault => "action-fault",
            EventKind::PassSummary => "pass-summary",
            EventKind::Server => "server",
        }
    }

    /// Inverse of [`EventKind::name`] (used when reloading JSONL logs).
    pub fn parse(name: &str) -> Option<EventKind> {
        match name {
            "print" => Some(EventKind::Print),
            "intent" => Some(EventKind::IntentChanged),
            "export" => Some(EventKind::Export),
            "operation" => Some(EventKind::Operation),
            "action-fault" => Some(EventKind::ActionFault),
            "pass-summary" => Some(EventKind::PassSummary),
            "server" => Some(EventKind::Server),
            _ => None,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One logged event.
#[derive(Debug, Clone)]
pub struct LogEvent {
    /// Seconds since the Unix epoch at record time.
    pub timestamp: f64,
    pub kind: EventKind,
    /// Free-form detail (`"print df 1000x12"`, `"intent = \[price\]"`).
    pub detail: String,
    /// Wall seconds the event took, when measurable (prints).
    pub elapsed: Option<f64>,
}

impl LogEvent {
    fn to_json(&self) -> String {
        // Full JSON string escaping — control characters (`\t`, `\r`, raw
        // 0x00..0x1f) must not pass through, or the JSONL line is invalid.
        let elapsed = self
            .elapsed
            .map(|e| format!(", \"elapsed\": {e}"))
            .unwrap_or_default();
        format!(
            "{{\"ts\": {:.3}, \"kind\": \"{}\", \"detail\": \"{}\"{elapsed}}}",
            self.timestamp,
            self.kind,
            lux_engine::trace::json_escape(&self.detail)
        )
    }

    /// Parse one JSONL line previously written by `to_json`. Returns `None`
    /// for lines in an unrecognized shape (foreign content is skipped, not
    /// guessed at).
    fn from_json(line: &str) -> Option<LogEvent> {
        let pairs = parse_flat_object(line)?;
        let get = |k: &str| {
            pairs
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        Some(LogEvent {
            timestamp: get("ts")?.parse().ok()?,
            kind: EventKind::parse(get("kind")?)?,
            detail: get("detail")?.to_string(),
            elapsed: get("elapsed").and_then(|v| v.parse().ok()),
        })
    }
}

/// Minimal parser for one flat JSON object of the shape this module emits
/// (string and number values only). Returns key → decoded value pairs.
fn parse_flat_object(line: &str) -> Option<Vec<(String, String)>> {
    let s: Vec<char> = line.trim().chars().collect();
    let skip_ws = |i: &mut usize| {
        while *i < s.len() && s[*i].is_whitespace() {
            *i += 1;
        }
    };
    let mut i = 0usize;
    if s.first() != Some(&'{') {
        return None;
    }
    i += 1;
    let mut pairs = Vec::new();
    loop {
        skip_ws(&mut i);
        match s.get(i)? {
            '}' => return Some(pairs),
            ',' => {
                i += 1;
                continue;
            }
            '"' => {}
            _ => return None,
        }
        let key = parse_json_string(&s, &mut i)?;
        skip_ws(&mut i);
        if s.get(i) != Some(&':') {
            return None;
        }
        i += 1;
        skip_ws(&mut i);
        let value = match s.get(i)? {
            '"' => parse_json_string(&s, &mut i)?,
            _ => {
                let start = i;
                while i < s.len() && !matches!(s[i], ',' | '}') {
                    i += 1;
                }
                s[start..i].iter().collect::<String>().trim().to_string()
            }
        };
        pairs.push((key, value));
    }
}

/// Decode a JSON string literal starting at `s[*i] == '"'`, advancing `i`
/// past the closing quote.
fn parse_json_string(s: &[char], i: &mut usize) -> Option<String> {
    *i += 1;
    let mut out = String::new();
    while *i < s.len() {
        match s[*i] {
            '"' => {
                *i += 1;
                return Some(out);
            }
            '\\' => {
                *i += 1;
                match s.get(*i)? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex: String = s.get(*i + 1..*i + 5)?.iter().collect();
                        out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                        *i += 4;
                    }
                    _ => return None,
                }
                *i += 1;
            }
            c => {
                out.push(c);
                *i += 1;
            }
        }
    }
    None
}

enum Sink {
    Memory,
    File(std::fs::File),
}

/// Collects usage events; clone the `Arc` into every wrapper that should
/// report to the same session log.
pub struct SessionLogger {
    events: Mutex<Vec<LogEvent>>,
    sink: Mutex<Sink>,
}

impl SessionLogger {
    /// An in-memory logger (inspect with [`SessionLogger::events`]).
    pub fn in_memory() -> Arc<SessionLogger> {
        Arc::new(SessionLogger {
            events: Mutex::new(Vec::new()),
            sink: Mutex::new(Sink::Memory),
        })
    }

    /// A logger that appends JSON-lines to `path` (and keeps the in-memory
    /// copy for inspection).
    ///
    /// Reopening an existing session file **reloads** its events: every
    /// parseable JSONL line becomes an in-memory [`LogEvent`] again, so
    /// [`SessionLogger::count_of`] and [`SessionLogger::think_times`] see
    /// the whole session history across reopens rather than silently
    /// undercounting. Lines this module did not write (or corrupted ones)
    /// are skipped, left untouched on disk, and not re-emitted.
    pub fn to_file(path: &std::path::Path) -> std::io::Result<Arc<SessionLogger>> {
        let existing: Vec<LogEvent> = match std::fs::read_to_string(path) {
            Ok(text) => text.lines().filter_map(LogEvent::from_json).collect(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Arc::new(SessionLogger {
            events: Mutex::new(existing),
            sink: Mutex::new(Sink::File(file)),
        }))
    }

    /// Record one event.
    pub fn log(&self, kind: EventKind, detail: impl Into<String>, elapsed: Option<f64>) {
        let event = LogEvent {
            timestamp: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0),
            kind,
            detail: detail.into(),
            elapsed,
        };
        if let Sink::File(f) = &mut *lock_recover(&self.sink) {
            let _ = writeln!(f, "{}", event.to_json());
        }
        lock_recover(&self.events).push(event);
    }

    /// Snapshot of the recorded events.
    pub fn events(&self) -> Vec<LogEvent> {
        lock_recover(&self.events).clone()
    }

    /// Count of events of one kind.
    pub fn count_of(&self, kind: EventKind) -> usize {
        lock_recover(&self.events)
            .iter()
            .filter(|e| e.kind == kind)
            .count()
    }

    /// The full JSONL rendering of the session so far.
    pub fn to_jsonl(&self) -> String {
        lock_recover(&self.events)
            .iter()
            .map(LogEvent::to_json)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Seconds between consecutive prints — the paper's "think time"
    /// distribution (fn. 2: median 2.8 s between showing the table and
    /// toggling to the Lux view).
    pub fn think_times(&self) -> Vec<f64> {
        let events = lock_recover(&self.events);
        let prints: Vec<f64> = events
            .iter()
            .filter(|e| e.kind == EventKind::Print)
            .map(|e| e.timestamp)
            .collect();
        prints.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts_events() {
        let log = SessionLogger::in_memory();
        log.log(EventKind::Print, "print df", Some(0.01));
        log.log(EventKind::IntentChanged, "intent = [price]", None);
        log.log(EventKind::Print, "print df", Some(0.02));
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.count_of(EventKind::Print), 2);
        assert_eq!(log.think_times().len(), 1);
    }

    #[test]
    fn jsonl_is_escaped_and_line_per_event() {
        let log = SessionLogger::in_memory();
        log.log(EventKind::Export, "vis \"quoted\"\nnewline", None);
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\\\"quoted\\\""));
        assert!(jsonl.contains("\\n"));
    }

    #[test]
    fn control_characters_are_escaped() {
        // Regression: raw \t, \r, and other control bytes used to pass
        // through unescaped, producing invalid JSONL.
        let log = SessionLogger::in_memory();
        log.log(EventKind::Operation, "tab\there\rcr\u{1}ctrl", None);
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("tab\\there"), "{jsonl}");
        assert!(jsonl.contains("\\rcr"), "{jsonl}");
        assert!(jsonl.contains("\\u0001ctrl"), "{jsonl}");
        assert!(!jsonl.contains('\t') && !jsonl.contains('\r'));
        // and the line round-trips
        let back = LogEvent::from_json(&jsonl).unwrap();
        assert_eq!(back.detail, "tab\there\rcr\u{1}ctrl");
    }

    #[test]
    fn from_json_roundtrips_every_field() {
        let event = LogEvent {
            timestamp: 1712.25,
            kind: EventKind::PassSummary,
            detail: "{\"total_ms\": 1.5, \"memo\": \"hit\"}".to_string(),
            elapsed: Some(0.0015),
        };
        let back = LogEvent::from_json(&event.to_json()).unwrap();
        assert_eq!(back.timestamp, event.timestamp);
        assert_eq!(back.kind, event.kind);
        assert_eq!(back.detail, event.detail);
        assert_eq!(back.elapsed, event.elapsed);
        // foreign / corrupted lines are rejected, not guessed at
        assert!(LogEvent::from_json("not json").is_none());
        assert!(
            LogEvent::from_json("{\"ts\": 1.0, \"kind\": \"martian\", \"detail\": \"x\"}")
                .is_none()
        );
    }

    #[test]
    fn reopened_file_logger_reloads_history() {
        let dir = std::env::temp_dir().join("lux_logger_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let log = SessionLogger::to_file(&path).unwrap();
            log.log(EventKind::Print, "print 10x2", Some(0.01));
            log.log(EventKind::Print, "print 10x2", Some(0.01));
            log.log(EventKind::Export, "vis", None);
        }
        let reopened = SessionLogger::to_file(&path).unwrap();
        // history is visible again...
        assert_eq!(reopened.events().len(), 3);
        assert_eq!(reopened.count_of(EventKind::Print), 2);
        assert_eq!(reopened.think_times().len(), 1);
        // ...and new events append after it, on disk and in memory
        reopened.log(EventKind::Print, "print 10x2", Some(0.02));
        assert_eq!(reopened.count_of(EventKind::Print), 3);
        assert_eq!(reopened.think_times().len(), 2);
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_sink_appends() {
        let dir = std::env::temp_dir().join("lux_logger_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let log = SessionLogger::to_file(&path).unwrap();
            log.log(EventKind::Print, "a", None);
            log.log(EventKind::Operation, "b", None);
        }
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
