//! Usage logging — the reproduction of the paper's `lux-logger` extension.
//!
//! The paper instruments widget interactions and notebook actions to study
//! usage ("based on 514 collected logs of Lux usage...", §9 fn. 2; "logged
//! via a custom extension", §10.1). [`SessionLogger`] records the analogous
//! events here — prints, intent changes, exports, derived operations — as
//! JSON-lines, either in memory or to a file, so deployments can analyze
//! real workflows the same way.

use std::fmt;
use std::io::Write;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use lux_engine::sync::lock_recover;

/// The kinds of events the paper's study cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A dataframe or series print (the always-on trigger).
    Print,
    /// The user set or cleared an intent.
    IntentChanged,
    /// A visualization was exported from the widget.
    Export,
    /// A derived-frame operation (filter, groupby, ...).
    Operation,
    /// An action failed, degraded, or was disabled during a pass (see
    /// `lux-recs::fault`); the detail carries the action name and reason.
    ActionFault,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Print => "print",
            EventKind::IntentChanged => "intent",
            EventKind::Export => "export",
            EventKind::Operation => "operation",
            EventKind::ActionFault => "action-fault",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One logged event.
#[derive(Debug, Clone)]
pub struct LogEvent {
    /// Seconds since the Unix epoch at record time.
    pub timestamp: f64,
    pub kind: EventKind,
    /// Free-form detail (`"print df 1000x12"`, `"intent = \[price\]"`).
    pub detail: String,
    /// Wall seconds the event took, when measurable (prints).
    pub elapsed: Option<f64>,
}

impl LogEvent {
    fn to_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
        let elapsed = self
            .elapsed
            .map(|e| format!(", \"elapsed\": {e}"))
            .unwrap_or_default();
        format!(
            "{{\"ts\": {:.3}, \"kind\": \"{}\", \"detail\": \"{}\"{elapsed}}}",
            self.timestamp,
            self.kind,
            esc(&self.detail)
        )
    }
}

enum Sink {
    Memory,
    File(std::fs::File),
}

/// Collects usage events; clone the `Arc` into every wrapper that should
/// report to the same session log.
pub struct SessionLogger {
    events: Mutex<Vec<LogEvent>>,
    sink: Mutex<Sink>,
}

impl SessionLogger {
    /// An in-memory logger (inspect with [`SessionLogger::events`]).
    pub fn in_memory() -> Arc<SessionLogger> {
        Arc::new(SessionLogger { events: Mutex::new(Vec::new()), sink: Mutex::new(Sink::Memory) })
    }

    /// A logger that appends JSON-lines to `path` (and keeps the in-memory
    /// copy for inspection).
    pub fn to_file(path: &std::path::Path) -> std::io::Result<Arc<SessionLogger>> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Arc::new(SessionLogger {
            events: Mutex::new(Vec::new()),
            sink: Mutex::new(Sink::File(file)),
        }))
    }

    /// Record one event.
    pub fn log(&self, kind: EventKind, detail: impl Into<String>, elapsed: Option<f64>) {
        let event = LogEvent {
            timestamp: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0),
            kind,
            detail: detail.into(),
            elapsed,
        };
        if let Sink::File(f) = &mut *lock_recover(&self.sink) {
            let _ = writeln!(f, "{}", event.to_json());
        }
        lock_recover(&self.events).push(event);
    }

    /// Snapshot of the recorded events.
    pub fn events(&self) -> Vec<LogEvent> {
        lock_recover(&self.events).clone()
    }

    /// Count of events of one kind.
    pub fn count_of(&self, kind: EventKind) -> usize {
        lock_recover(&self.events).iter().filter(|e| e.kind == kind).count()
    }

    /// The full JSONL rendering of the session so far.
    pub fn to_jsonl(&self) -> String {
        lock_recover(&self.events)
            .iter()
            .map(LogEvent::to_json)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Seconds between consecutive prints — the paper's "think time"
    /// distribution (fn. 2: median 2.8 s between showing the table and
    /// toggling to the Lux view).
    pub fn think_times(&self) -> Vec<f64> {
        let events = lock_recover(&self.events);
        let prints: Vec<f64> = events
            .iter()
            .filter(|e| e.kind == EventKind::Print)
            .map(|e| e.timestamp)
            .collect();
        prints.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts_events() {
        let log = SessionLogger::in_memory();
        log.log(EventKind::Print, "print df", Some(0.01));
        log.log(EventKind::IntentChanged, "intent = [price]", None);
        log.log(EventKind::Print, "print df", Some(0.02));
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.count_of(EventKind::Print), 2);
        assert_eq!(log.think_times().len(), 1);
    }

    #[test]
    fn jsonl_is_escaped_and_line_per_event() {
        let log = SessionLogger::in_memory();
        log.log(EventKind::Export, "vis \"quoted\"\nnewline", None);
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\\\"quoted\\\""));
        assert!(jsonl.contains("\\n"));
    }

    #[test]
    fn file_sink_appends() {
        let dir = std::env::temp_dir().join("lux_logger_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let log = SessionLogger::to_file(&path).unwrap();
            log.log(EventKind::Print, "a", None);
            log.log(EventKind::Operation, "b", None);
        }
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
