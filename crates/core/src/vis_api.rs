//! The direct visualization API (paper §5.2.2): `Vis([clauses], df)` and
//! `VisList([clauses], df)` build charts immediately from an intent instead
//! of attaching it to the dataframe.

use lux_dataframe::prelude::*;
use lux_intent::Clause;
use lux_vis::{ProcessOptions, Vis, VisSpec};

use crate::luxframe::LuxDataFrame;

/// A single visualization created directly from an intent
/// (Q3: `Vis([axis1, axis2], df)`).
#[derive(Debug)]
pub struct LuxVis {
    vis: Vis,
}

impl LuxVis {
    /// Compile the clauses against `ldf` and process the first resulting
    /// visualization. Errors if the intent is invalid or compiles to no
    /// visualization.
    pub fn new(intent: Vec<Clause>, ldf: &LuxDataFrame) -> Result<LuxVis> {
        let mut list = LuxVisList::new(intent, ldf)?;
        if list.visualizations.is_empty() {
            return Err(Error::InvalidArgument(
                "intent compiles to no visualization".into(),
            ));
        }
        Ok(LuxVis {
            vis: list.visualizations.remove(0),
        })
    }

    /// Parse string clauses and build (Q3 shorthand).
    pub fn from_strs<S: AsRef<str>, I: IntoIterator<Item = S>>(
        intent: I,
        ldf: &LuxDataFrame,
    ) -> Result<LuxVis> {
        Self::new(lux_intent::parse_intent(intent)?, ldf)
    }

    /// The complete specification.
    pub fn spec(&self) -> &VisSpec {
        &self.vis.spec
    }

    /// The processed chart data.
    pub fn data(&self) -> Option<&DataFrame> {
        self.vis.data.as_ref()
    }

    /// The inner [`Vis`].
    pub fn inner(&self) -> &Vis {
        &self.vis
    }

    /// Terminal rendering.
    pub fn render_ascii(&self) -> String {
        lux_vis::render::ascii::render(&self.vis)
    }

    /// Vega-Lite JSON.
    pub fn to_vega_lite(&self) -> String {
        lux_vis::render::vega::to_vega_lite(&self.vis)
    }

    /// Reconstructable Rust source (the export-as-code path).
    pub fn to_code(&self) -> String {
        lux_vis::render::code::to_rust_code(&self.vis.spec)
    }
}

impl std::fmt::Display for LuxVis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render_ascii())
    }
}

/// A collection of visualizations from one intent
/// (Q5: `VisList(["EducationField", rates], df)`).
#[derive(Debug)]
pub struct LuxVisList {
    pub visualizations: Vec<Vis>,
}

impl LuxVisList {
    /// Compile and process every visualization the intent describes.
    pub fn new(intent: Vec<Clause>, ldf: &LuxDataFrame) -> Result<LuxVisList> {
        let meta = ldf.metadata();
        let diags = lux_intent::validate(&intent, &meta);
        if lux_intent::has_errors(&diags) {
            let msgs: Vec<String> = diags.iter().map(|d| d.message.clone()).collect();
            return Err(Error::InvalidArgument(format!(
                "invalid intent: {}",
                msgs.join("; ")
            )));
        }
        let copts = lux_intent::CompileOptions {
            max_filter_expansions: ldf.config().max_filter_expansions,
            histogram_bins: ldf.config().histogram_bins,
            ..Default::default()
        };
        let specs = lux_intent::compile(&intent, &meta, &copts)?;
        let popts = ProcessOptions {
            histogram_bins: ldf.config().histogram_bins,
            max_bars: ldf.config().max_bars,
            seed: ldf.config().sample_seed,
            ..ProcessOptions::default()
        };
        let mut visualizations = Vec::with_capacity(specs.len());
        for spec in specs {
            let mut vis = Vis::new(spec);
            if vis.process(ldf.data(), &popts).is_ok() {
                visualizations.push(vis);
            }
        }
        Ok(LuxVisList { visualizations })
    }

    /// Parse string clauses and build (Q5-Q7 shorthand).
    pub fn from_strs<S: AsRef<str>, I: IntoIterator<Item = S>>(
        intent: I,
        ldf: &LuxDataFrame,
    ) -> Result<LuxVisList> {
        Self::new(lux_intent::parse_intent(intent)?, ldf)
    }

    pub fn len(&self) -> usize {
        self.visualizations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.visualizations.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Vis> {
        self.visualizations.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lux_vis::{Channel, Mark};

    fn ldf() -> LuxDataFrame {
        let df = DataFrameBuilder::new()
            .float("Age", (0..30).map(|i| 20.0 + i as f64))
            .float("HourlyRate", (0..30).map(|i| 10.0 + (i % 7) as f64))
            .float("DailyRate", (0..30).map(|i| 80.0 + (i % 11) as f64))
            .str(
                "EducationField",
                (0..30).map(|i| ["STEM", "Arts", "Business"][i % 3]),
            )
            .str(
                "Country",
                (0..30).map(|i| ["USA", "Japan", "Germany"][i % 3]),
            )
            .build()
            .unwrap();
        LuxDataFrame::new(df)
    }

    #[test]
    fn q3_vis_direct() {
        let ldf = ldf();
        let v = LuxVis::from_strs(["Age", "EducationField"], &ldf).unwrap();
        assert_eq!(v.spec().mark, Mark::Bar);
        assert_eq!(
            v.spec().channel(Channel::Y).unwrap().aggregation,
            Some(Agg::Mean)
        );
        assert!(v.data().is_some());
        assert!(v.render_ascii().contains('█'));
    }

    #[test]
    fn q4_explicit_variance() {
        let ldf = ldf();
        let v = LuxVis::new(
            vec![
                Clause::axis("HourlyRate").aggregate(Agg::Var),
                Clause::axis("EducationField"),
            ],
            &ldf,
        )
        .unwrap();
        assert_eq!(
            v.spec().channel(Channel::Y).unwrap().aggregation,
            Some(Agg::Var)
        );
    }

    #[test]
    fn q5_union_vislist() {
        let ldf = ldf();
        let list = LuxVisList::from_strs(["EducationField", "HourlyRate|DailyRate"], &ldf).unwrap();
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn q7_country_wildcard() {
        let ldf = ldf();
        let list = LuxVisList::from_strs(["Age", "Country=?"], &ldf).unwrap();
        assert_eq!(list.len(), 3);
        assert!(list.iter().all(|v| v.spec.mark == Mark::Histogram));
    }

    #[test]
    fn invalid_intent_errors_with_message() {
        let ldf = ldf();
        let err = LuxVis::from_strs(["NotAColumn"], &ldf).unwrap_err();
        assert!(err.to_string().contains("NotAColumn"));
    }

    #[test]
    fn export_to_code_roundtrips_structure() {
        let ldf = ldf();
        let v = LuxVis::from_strs(["Age", "EducationField"], &ldf).unwrap();
        let code = v.to_code();
        assert!(
            code.contains("Clause::axis(\"Age\")")
                || code.contains("Clause::axis(\"EducationField\")")
        );
        let json = v.to_vega_lite();
        assert!(json.contains("\"mark\": \"bar\""));
    }
}
