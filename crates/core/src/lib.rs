//! # lux-core
//!
//! The public face of the Lux reproduction: a [`LuxDataFrame`] wraps a
//! dataframe and makes every "print" an always-on visualization
//! recommendation (paper: "Lux: Always-on Visualization Recommendations for
//! Exploratory Dataframe Workflows", VLDB 2022).
//!
//! ```
//! use lux_core::prelude::*;
//!
//! let df = DataFrameBuilder::new()
//!     .float("AvrgLifeExpectancy", (0..40).map(|i| 60.0 + (i % 20) as f64))
//!     .float("Inequality", (0..40).map(|i| 50.0 - (i % 20) as f64))
//!     .str("Region", (0..40).map(|i| ["EU", "AF", "AS", "NA"][i % 4]))
//!     .build()
//!     .unwrap();
//! let mut ldf = LuxDataFrame::new(df);
//!
//! // Always-on overview: just print.
//! let widget = ldf.print();
//! assert!(widget.tabs().contains(&"Correlation"));
//!
//! // Steer with intent, like `df.intent = ["AvrgLifeExpectancy", "Inequality"]`.
//! ldf.set_intent_strs(["AvrgLifeExpectancy", "Inequality"]).unwrap();
//! let widget = ldf.print();
//! assert!(widget.tabs().contains(&"Enhance"));
//! ```

pub mod logging;
pub mod luxframe;
pub mod luxseries;
pub mod perf;
pub mod vis_api;
pub mod widget;

pub use logging::{EventKind, SessionLogger};
pub use luxframe::{LuxDataFrame, PrintOptions};
pub use luxseries::LuxSeries;
pub use perf::PassSummary;
pub use vis_api::{LuxVis, LuxVisList};
pub use widget::{Widget, WireWidget};

/// Common imports for applications using Lux.
pub mod prelude {
    pub use crate::logging::{EventKind, SessionLogger};
    pub use crate::luxframe::{LuxDataFrame, PrintOptions};
    pub use crate::luxseries::LuxSeries;
    pub use crate::perf::PassSummary;
    pub use crate::vis_api::{LuxVis, LuxVisList};
    pub use crate::widget::{Widget, WireWidget};
    pub use lux_dataframe::prelude::*;
    pub use lux_engine::{
        LuxConfig, MetricsRegistry, MetricsSnapshot, PassTrace, SemanticType, TraceCollector,
    };
    pub use lux_intent::{parse_clause, parse_intent, Clause};
    pub use lux_recs::{ActionContext, ActionRegistry, ActionResult, Candidate, CustomAction};
    pub use lux_vis::{Channel, Encoding, FilterSpec, Mark, Vis, VisList, VisSpec};
}
