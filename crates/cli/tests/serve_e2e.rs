//! Binary-level crash-tolerance tests for `lux-shell serve`: SIGTERM
//! drains and exits cleanly; `kill -9` loses nothing that was journaled —
//! a restarted server replays the journal and serves the same frames.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use lux_server::{Client, PrintOutcome};

const CSV: &str = "mpg,hp,origin\n18.0,130,usa\n24.0,95,japan\n27.0,88,japan\n14.0,220,usa\n";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lux_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn `lux-shell serve` on an ephemeral port over `data_dir`, wait for
/// the ready marker, and return the child plus the resolved address.
fn spawn_server(data_dir: &Path, log: &Path) -> (Child, String) {
    let log_file = std::fs::File::create(log).unwrap();
    let child = Command::new(env!("CARGO_BIN_EXE_lux-shell"))
        .arg("serve")
        .arg("127.0.0.1:0")
        .env("LUX_SERVER_DATA_DIR", data_dir)
        .env("LUX_READ_TIMEOUT_MS", "300")
        .env("LUX_DRAIN_TIMEOUT_MS", "3000")
        .env("LUX_METRICS_ADDR", "127.0.0.1:0")
        .stdout(Stdio::from(log_file))
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn lux-shell serve");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let text = std::fs::read_to_string(log).unwrap_or_default();
        if text.contains("lux-serve: ready") {
            let addr = text
                .lines()
                .find_map(|l| l.strip_prefix("lux-serve: listening on "))
                .expect("listening line")
                .trim()
                .to_string();
            return (child, addr);
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn connect(addr: &str) -> Client {
    Client::connect(addr, Duration::from_secs(10)).expect("connect")
}

#[test]
fn sigterm_drains_and_exits_zero() {
    let dir = tmp_dir("sigterm");
    let log = dir.join("serve.log");
    let (mut child, addr) = spawn_server(&dir, &log);

    let mut c = connect(&addr);
    assert!(!c.hello("t1").expect("hello"));
    c.put_frame("cars", CSV).expect("put");
    // Leave the connection open and idle: drain must still complete
    // because idle readers hang up once draining flips.
    let status = Command::new("kill")
        .args(["-s", "TERM", &child.id().to_string()])
        .status()
        .expect("kill -s TERM");
    assert!(status.success());
    let deadline = Instant::now() + Duration::from_secs(15);
    let code = loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            break st;
        }
        assert!(
            Instant::now() < deadline,
            "server did not exit after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(code.success(), "SIGTERM exit was {code:?}");
    let text = std::fs::read_to_string(&log).unwrap_or_default();
    assert!(
        text.contains("drained"),
        "expected a drain line in the log, got:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_nine_then_restart_replays_journal() {
    let dir = tmp_dir("kill9");
    let log1 = dir.join("serve1.log");
    let (mut child, addr) = spawn_server(&dir, &log1);

    let mut c = connect(&addr);
    c.hello("t1").expect("hello");
    c.put_frame("cars", CSV).expect("put cars");
    c.put_frame("gone", CSV).expect("put gone");
    assert!(c.drop_frame("gone").expect("drop"));
    match c.print("cars", "mpg,hp", 0, 2).expect("print") {
        PrintOutcome::Widget(w) => assert_eq!(w.num_rows, 4),
        other => panic!("unexpected outcome before kill: {other:?}"),
    }
    // Hard kill: no drain, no shutdown protocol, journal must carry it.
    child.kill().expect("kill -9");
    let _ = child.wait();

    let log2 = dir.join("serve2.log");
    let (mut child2, addr2) = spawn_server(&dir, &log2);
    let mut c2 = connect(&addr2);
    c2.hello("t1").expect("hello after restart");
    assert_eq!(
        c2.list_frames().expect("list"),
        vec!["cars".to_string()],
        "journal replay should restore `cars` and honour the drop of `gone`"
    );
    match c2.print("cars", "", 0, 2).expect("print after restart") {
        PrintOutcome::Widget(w) => {
            assert_eq!(w.num_rows, 4);
            assert!(!w.was_shed());
        }
        other => panic!("unexpected outcome after restart: {other:?}"),
    }
    // Clean shutdown of the second life via the wire protocol.
    c2.shutdown().expect("shutdown");
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        if child2.try_wait().expect("try_wait").is_some() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server did not exit after Shutdown"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_subcommand_round_trips_against_a_live_server() {
    let dir = tmp_dir("clientcmd");
    let log = dir.join("serve.log");
    let (mut child, addr) = spawn_server(&dir, &log);
    let csv_path = dir.join("cars.csv");
    std::fs::write(&csv_path, CSV).unwrap();

    let run = |args: &[&str]| -> (bool, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_lux-shell"))
            .arg("client")
            .arg(&addr)
            .args(args)
            .output()
            .expect("run client");
        let mut text = String::from_utf8_lossy(&out.stdout).to_string();
        text.push_str(&String::from_utf8_lossy(&out.stderr));
        (out.status.success(), text)
    };

    let (ok, text) = run(&["ping"]);
    assert!(ok && text.contains("pong"), "ping: {text}");
    let (ok, text) = run(&["put", "t1", "cars", csv_path.to_str().unwrap()]);
    assert!(ok && text.contains("stored cars"), "put: {text}");
    let (ok, text) = run(&["print", "t1", "cars", "mpg,hp"]);
    assert!(ok && text.contains("Current Vis"), "print: {text}");
    let (ok, text) = run(&["list", "t1"]);
    assert!(ok && text.contains("cars"), "list: {text}");
    let (ok, text) = run(&["stats"]);
    assert!(ok && text.contains("frames: 1"), "stats: {text}");
    // Observability surface: Prometheus exposition over the wire, the
    // flight-recorder table, and a bounded `top` watch round.
    let (ok, text) = run(&["metrics"]);
    assert!(
        ok && text.contains("# TYPE") && text.contains("lux_tenant_requests"),
        "metrics: {text}"
    );
    let (ok, text) = run(&["flight"]);
    assert!(ok && text.contains("flight recorder"), "flight: {text}");
    let (ok, text) = run(&["top", "100", "1"]);
    assert!(
        ok && text.contains("lux-top") && text.contains("flight recorder"),
        "top: {text}"
    );

    // The standalone exposition listener announced in the serve log serves
    // the same catalogue over plain HTTP.
    let serve_log = std::fs::read_to_string(&log).unwrap_or_default();
    let maddr = serve_log
        .lines()
        .find_map(|l| l.strip_prefix("lux-serve: metrics on "))
        .expect("metrics marker in serve log")
        .trim()
        .to_string();
    {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(&maddr).expect("connect metrics");
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        s.read_to_string(&mut body).expect("scrape");
        assert!(
            body.contains("200 OK") && body.contains("lux_tenant_requests"),
            "scrape: {body}"
        );
    }

    child.kill().expect("kill");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
