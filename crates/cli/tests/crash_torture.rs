//! Randomized kill -9 torture for the durable-state stack.
//!
//! Each cycle boots a real `lux-shell serve` process over a shared data
//! dir, hammers it with puts from a writer thread (every ack recorded with
//! its journal seq), kill -9s the server at a random instant, restarts it,
//! and asserts the three invariants the journal promises:
//!
//! 1. **Every acked put is served after restart** — for each name, the
//!    recovered frame exists and its row count is at least the last acked
//!    put's (an un-acked later put may have been applied; an acked one may
//!    never be lost). Acks with `seq == 0` (degraded persistence — e.g.
//!    the `io.fsync=return` CI mode) explicitly carry no durability
//!    promise and are exempted.
//! 2. **No corrupt frame is ever served** — every recovered frame prints,
//!    and its served shape matches what `StatFrame` reports.
//! 3. **Recovery is bounded and reported** — the boot log carries a
//!    `recovery completed in N ms` note, and N stays under a generous
//!    ceiling.
//!
//! The run is seeded (`LUX_TORTURE_SEED`) and sized (`LUX_TORTURE_CYCLES`,
//! default 5 locally; CI runs 50) so failures reproduce. The server is
//! spawned on a Unix socket so restarts keep the same address and the
//! reconnecting client can ride across them.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lux_server::{Client, PrintOutcome};

/// Maximum tolerated journal replay + spool verify time after a crash.
const RECOVERY_CEILING_MS: u64 = 30_000;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lux_torture_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic xorshift64 so every failure reproduces from its seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Spawn `lux-shell serve` on `addr` over `data_dir`, wait for the ready
/// marker, and return the child. Aggressive compaction thresholds so the
/// snapshot/truncate path runs *during* the torture window, not only in
/// long benchmarks.
fn spawn_server(data_dir: &Path, addr: &str, log: &Path) -> Child {
    let log_file = std::fs::File::create(log).unwrap();
    let child = Command::new(env!("CARGO_BIN_EXE_lux-shell"))
        .arg("serve")
        .arg(addr)
        .env("LUX_SERVER_DATA_DIR", data_dir)
        .env("LUX_READ_TIMEOUT_MS", "300")
        .env("LUX_DRAIN_TIMEOUT_MS", "2000")
        .env("LUX_JOURNAL_COMPACT_LINES", "24")
        .stdout(Stdio::from(log_file))
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn lux-shell serve");
    let deadline = Instant::now() + Duration::from_secs(20);
    while !std::fs::read_to_string(log)
        .unwrap_or_default()
        .contains("lux-serve: ready")
    {
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
    child
}

/// A CSV whose data-row count encodes the put's identity, so the served
/// shape proves which put survived.
fn csv_with_rows(rows: u64) -> String {
    let mut s = String::from("a,b\n");
    for i in 0..rows {
        s.push_str(&format!("{i},{}\n", i * 2));
    }
    s
}

/// The last *acked* put per name: (rows, seq). seq 0 = ack without a
/// durability promise (degraded persistence).
type AckedState = Arc<Mutex<std::collections::BTreeMap<String, (u64, u64)>>>;

#[test]
fn kill_nine_torture_loses_no_acked_put_and_serves_no_corrupt_frame() {
    // Trim client-side reconnect budgets: after a kill the writer should
    // fail fast, not burn the torture window in backoff.
    std::env::set_var("LUX_CLIENT_RETRIES", "1");
    std::env::set_var("LUX_CLIENT_BACKOFF_MS", "20");

    let cycles = env_u64("LUX_TORTURE_CYCLES", 5);
    let seed = env_u64("LUX_TORTURE_SEED", {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1);
        t ^ ((std::process::id() as u64) << 32) | 1
    });
    eprintln!("crash torture: {cycles} cycle(s), seed {seed} (LUX_TORTURE_SEED to reproduce)");
    let mut rng = Rng(seed | 1);

    let dir = tmp_dir("kill9");
    let addr = format!("unix:{}", dir.join("sock").display());
    let acked: AckedState = Arc::new(Mutex::new(Default::default()));
    // Rows counter rises monotonically across the whole run, so every put
    // is distinguishable by shape and "newer" always means "more rows".
    let mut next_rows = 1u64;
    let mut worst_recovery_ms = 0u64;

    for cycle in 0..cycles {
        let log = dir.join(format!("serve_{cycle}.log"));
        let mut child = spawn_server(&dir, &addr, &log);

        // Writer: hammer puts over ~4 hot names until the server dies or
        // the cycle stops it. Acks are recorded only after the response
        // frame is fully read — the definition of "acked".
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let addr = addr.clone();
            let acked = Arc::clone(&acked);
            let stop = Arc::clone(&stop);
            let base_rows = next_rows;
            std::thread::spawn(move || {
                let Ok(mut c) = Client::connect(&addr, Duration::from_secs(2)) else {
                    return 0u64;
                };
                if c.hello("torture").is_err() {
                    return 0;
                }
                let mut rows = base_rows;
                while !stop.load(Ordering::Relaxed) {
                    let name = format!("f{}", rows % 4);
                    match c.put_frame_durable(&name, &csv_with_rows(rows)) {
                        Ok(ack) => {
                            assert_eq!(ack.rows, rows, "server acked a different shape");
                            acked.lock().unwrap().insert(name, (rows, ack.seq));
                            rows += 1;
                        }
                        // Transport death = the kill landed; anything else
                        // (RetryUnsafe after a failed settle) also ends the
                        // cycle — the un-acked put is allowed either way.
                        Err(_) => break,
                    }
                }
                rows
            })
        };

        // Let the writer run, then kill -9 at a random instant.
        std::thread::sleep(Duration::from_millis(rng.range(5, 80)));
        child.kill().expect("kill -9");
        let _ = child.wait();
        stop.store(true, Ordering::Relaxed);
        next_rows = writer.join().expect("writer thread").max(next_rows);

        // Restart over the same data dir and verify the invariants.
        let log2 = dir.join(format!("recover_{cycle}.log"));
        let mut child2 = spawn_server(&dir, &addr, &log2);

        // Invariant 3 — recovery reported and bounded. The note lands in
        // the JSONL session log inside the data dir.
        let session_log = std::fs::read_to_string(dir.join("server.log.jsonl")).unwrap_or_default();
        let recovery_ms = session_log
            .lines()
            .rev()
            .find_map(|l| {
                let at = l.find("recovery completed in ")?;
                l[at + "recovery completed in ".len()..]
                    .split_whitespace()
                    .next()?
                    .parse::<u64>()
                    .ok()
            })
            .expect("recovery time note in the session log");
        assert!(
            recovery_ms < RECOVERY_CEILING_MS,
            "cycle {cycle}: recovery took {recovery_ms} ms"
        );
        worst_recovery_ms = worst_recovery_ms.max(recovery_ms);

        let mut c = Client::connect(&addr, Duration::from_secs(5)).expect("connect after restart");
        c.hello("torture").expect("hello after restart");
        let served = c.list_frames().expect("list after restart");
        let snapshot = acked.lock().unwrap().clone();
        for (name, (rows, seq)) in &snapshot {
            if *seq == 0 {
                continue; // acked without a durability promise
            }
            // Invariant 1 — the acked put (or a newer one) is served.
            assert!(
                served.contains(name),
                "cycle {cycle}: acked put {name:?} (rows {rows}, seq {seq}) lost after restart; \
                 served = {served:?}, seed {seed}"
            );
            let stat = c
                .stat_frame(name)
                .expect("stat after restart")
                .unwrap_or_else(|| panic!("cycle {cycle}: {name:?} listed but not stat-able"));
            assert!(
                stat.rows >= *rows,
                "cycle {cycle}: {name:?} went backwards: acked rows {rows}, served {}, seed {seed}",
                stat.rows
            );
            // Invariant 2 — what is served is intact: the frame prints and
            // its served shape matches the stat.
            match c.print(name, "", 0, 1).expect("print after restart") {
                PrintOutcome::Widget(w) => assert_eq!(
                    w.num_rows as u64, stat.rows,
                    "cycle {cycle}: {name:?} served a shape different from its stat"
                ),
                PrintOutcome::Busy { .. } => {} // shed, not corrupt
                PrintOutcome::Error(code, msg) => {
                    panic!("cycle {cycle}: {name:?} failed to serve: {code:?} {msg}")
                }
            }
        }
        // Persistence health is always *visible*, whatever state it is in.
        let stats = c.stats().expect("stats after restart");
        assert!(
            stats.contains("journal:"),
            "stats must surface journal health:\n{stats}"
        );

        child2.kill().expect("kill cycle server");
        let _ = child2.wait();
    }
    eprintln!("crash torture: {cycles} cycle(s) ok, worst recovery {worst_recovery_ms} ms");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_spool_is_quarantined_not_served_after_restart() {
    let dir = tmp_dir("quarantine");
    let addr = format!("unix:{}", dir.join("sock").display());
    let log = dir.join("serve.log");
    let mut child = spawn_server(&dir, &addr, &log);

    let mut c = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
    c.hello("t1").expect("hello");
    c.put_frame("cars", &csv_with_rows(6)).expect("put cars");
    c.put_frame("intact", &csv_with_rows(3))
        .expect("put intact");
    child.kill().expect("kill -9");
    let _ = child.wait();

    // Flip one digit inside the spooled payload. The damaged CSV still
    // parses — only the journaled checksum can catch it. Spool files are
    // versioned by journal seq, so locate the live one by prefix.
    let spool = std::fs::read_dir(dir.join("frames/t1"))
        .expect("spool dir")
        .flatten()
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("cars."))
        })
        .expect("spooled cars file");
    let mut bytes = std::fs::read(&spool).expect("spool file");
    let pos = bytes.iter().rposition(|&b| b == b'4').expect("a digit");
    bytes[pos] = b'5';
    std::fs::write(&spool, &bytes).unwrap();

    let log2 = dir.join("recover.log");
    let mut child2 = spawn_server(&dir, &addr, &log2);
    let mut c = Client::connect(&addr, Duration::from_secs(5)).expect("reconnect");
    c.hello("t1").expect("hello after restart");
    assert_eq!(
        c.list_frames().expect("list"),
        vec!["intact".to_string()],
        "the corrupt frame must not be served"
    );
    assert!(c.stat_frame("cars").expect("stat").is_none());
    // The quarantine is visible: the file moved, the metric counted, and
    // the boot note says so.
    assert!(
        !spool.exists(),
        "corrupt spool must be moved out of the way"
    );
    assert!(dir.join("quarantine").exists());
    let metrics = c.metrics().expect("metrics");
    assert!(
        metrics.contains("lux_server_journal_quarantined_frames 1"),
        "quarantine must be counted:\n{metrics}"
    );
    let session_log = std::fs::read_to_string(dir.join("server.log.jsonl")).unwrap_or_default();
    assert!(
        session_log.contains("quarantined"),
        "boot log must report the quarantine"
    );

    child2.kill().expect("kill");
    let _ = child2.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watch_client_rides_across_a_server_restart() {
    let dir = tmp_dir("watch");
    let addr = format!("unix:{}", dir.join("sock").display());
    let log = dir.join("serve.log");
    let mut child = spawn_server(&dir, &addr, &log);

    let mut c = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
    c.hello("t1").expect("hello");
    c.put_frame("cars", &csv_with_rows(4)).expect("put");
    child.kill().expect("kill -9");
    let _ = child.wait();

    // Restart on the same socket path; the *same* client object must ride
    // over the restart: reconnect, replay Hello, retry the read.
    let log2 = dir.join("recover.log");
    let mut child2 = spawn_server(&dir, &addr, &log2);
    let names = c
        .list_frames()
        .expect("list after restart on the old client");
    assert_eq!(names, vec!["cars".to_string()]);

    child2.kill().expect("kill");
    let _ = child2.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
