//! The `lux-shell` binary: a line-oriented REPL over [`lux_cli::Shell`],
//! plus the long-lived recommendation server and its one-shot client.
//!
//! ```sh
//! lux-shell [csv-file ...]           # each file is loaded as a session frame
//! lux-shell serve [addr]             # run the recommendation server
//! lux-shell client <addr> <cmd> ...  # one request against a server
//! ```

use std::io::{BufRead, Write};

use lux_cli::{parse_command, serve, Command, Shell};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.split_first() {
        Some((mode, rest)) if mode == "serve" => {
            std::process::exit(serve::run_serve(rest));
        }
        Some((mode, rest)) if mode == "client" => {
            std::process::exit(serve::run_client(rest));
        }
        _ => {}
    }
    // Arm `LUX_FAILPOINTS` before anything touches ingest: the registry is
    // otherwise initialized lazily on the first admission, which is too
    // late for faults injected into `load`.
    lux_engine::failpoint::init();
    let mut shell = Shell::new();
    for (i, arg) in std::env::args().skip(1).enumerate() {
        let name = if i == 0 {
            "df".to_string()
        } else {
            format!("df{}", i + 1)
        };
        match shell.execute(Command::Load {
            path: arg.clone(),
            name,
            permissive: false,
        }) {
            Ok(Some(msg)) => println!("{msg}"),
            Ok(None) => {}
            Err(e) => eprintln!("error loading {arg}: {e}"),
        }
    }
    println!("lux-shell — always-on visualization recommendations. Type 'help'.");

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!(
            "lux{}> ",
            shell
                .current_name()
                .map(|n| format!("[{n}]"))
                .unwrap_or_default()
        );
        let _ = std::io::stdout().flush();
        let Some(Ok(line)) = lines.next() else { break };
        if line.trim().is_empty() {
            continue;
        }
        match parse_command(&line).and_then(|cmd| shell.execute(cmd)) {
            Ok(Some(output)) => println!("{output}"),
            Ok(None) => break, // quit
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
