//! # lux-cli
//!
//! The interactive shell — this reproduction's stand-in for the paper's
//! Jupyter frontend. A `lux-shell` session alternates dataframe operations
//! with always-on prints, exactly the workflow the paper studies, but in a
//! terminal: `demo airbnb`, `print`, `intent price, room_type`, `filter
//! price<=500`, `export Correlation 0`, `save-report out.html`.

pub mod commands;
pub mod serve;

pub use commands::{parse_command, Command, Shell, HELP};
