//! `lux-shell serve` / `lux-shell client` — the long-lived recommendation
//! server and a one-shot command-line client for it.
//!
//! ```sh
//! lux-shell serve [addr]                  # serve until SIGTERM / shutdown
//! lux-shell client <addr> <cmd> [...]     # one request, exit code reports it
//! ```
//!
//! The serve loop installs a SIGTERM handler: on signal the listener stops
//! accepting, `Hello` answers `draining: true`, in-flight passes finish (up
//! to `LUX_DRAIN_TIMEOUT_MS`), then the process exits 0.

use std::time::Duration;

use lux_server::{Client, ClientError, PrintOutcome, Server, ServerConfig};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Run the server until shutdown; returns a process exit code.
pub fn run_serve(args: &[String]) -> i32 {
    lux_engine::failpoint::init();
    let mut cfg = ServerConfig::from_env();
    if let Some(addr) = args.first() {
        cfg.addr = addr.clone();
    }
    lux_server::install_signal_handlers();
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lux-serve: bind failed: {e}");
            return 2;
        }
    };
    println!("lux-serve: listening on {}", server.local_addr());
    if let Some(maddr) = server.metrics_addr() {
        // Scrape jobs and the CI load test wait for this marker.
        println!("lux-serve: metrics on {maddr}");
    }
    // Tests and scripts wait for this marker before connecting.
    println!("lux-serve: ready");
    match server.run() {
        Ok(0) => {
            println!("lux-serve: drained cleanly");
            0
        }
        Ok(leftover) => {
            eprintln!("lux-serve: drain timeout with {leftover} request(s) in flight");
            0
        }
        Err(e) => {
            eprintln!("lux-serve: {e}");
            2
        }
    }
}

/// Parse optional `[interval-ms] [rounds]` watch arguments (shared by the
/// `top` and `flight` watch modes). `None` = bad arguments, reported.
fn parse_watch_args(tail: &[String]) -> Option<(u64, u64)> {
    let interval_ms = match tail.first().map(|s| s.parse::<u64>()) {
        None => 1_000,
        Some(Ok(v)) => v.max(50),
        Some(Err(_)) => {
            eprintln!("lux-client: bad interval {:?} (want milliseconds)", tail[0]);
            return None;
        }
    };
    let rounds = match tail.get(1).map(|s| s.parse::<u64>()) {
        None => u64::MAX,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            eprintln!("lux-client: bad round count {:?}", tail[1]);
            return None;
        }
    };
    Some((interval_ms, rounds))
}

/// A reconnecting watch loop: render every `interval_ms`, forever or for
/// `rounds` iterations. A transport failure does not exit the watch — the
/// client reconnects with backoff and the loop keeps going (a failed
/// attempt counts as a round, so bounded runs always terminate). Only
/// server-side typed errors end the loop.
fn watch_loop(
    label: &str,
    addr: &str,
    interval_ms: u64,
    rounds: u64,
    mut render: impl FnMut() -> Result<String, ClientError>,
) -> Result<i32, ClientError> {
    let mut round = 0u64;
    loop {
        round += 1;
        match render() {
            Ok(text) => {
                if rounds == u64::MAX {
                    // Redraw in place on an interactive watch; a bounded
                    // run (scripts, tests) streams plainly.
                    print!("\x1b[2J\x1b[H");
                }
                println!("{label}: {addr} (round {round})\n");
                println!("{text}");
            }
            Err(e) if e.is_transport() => {
                eprintln!("{label}: {e}; reconnecting...");
            }
            Err(e) => {
                eprintln!("{label}: {e}");
                return Err(e);
            }
        }
        if round >= rounds {
            return Ok(0);
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

/// Run one client command; returns a process exit code.
///
/// Commands: `ping`, `stats`, `metrics`, `flight [interval-ms] [rounds]`,
/// `top [interval-ms] [rounds]`, `shutdown`, `list <tenant>`,
/// `put <tenant> <name> <csv-path>`, `drop <tenant> <name>`,
/// `print <tenant> <name> [intent] [deadline-ms] [trace-id]`.
pub fn run_client(args: &[String]) -> i32 {
    let usage = "usage: lux-shell client <addr> \
                 ping|stats|metrics|flight|top|shutdown|list|put|drop|print [...]";
    let (addr, rest) = match args.split_first() {
        Some((a, r)) if !r.is_empty() => (a.as_str(), r),
        _ => {
            eprintln!("{usage}");
            return 2;
        }
    };
    let mut client = match Client::connect(addr, CLIENT_TIMEOUT) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lux-client: connect {addr}: {e}");
            return 2;
        }
    };
    let cmd = rest[0].as_str();
    let args = &rest[1..];
    let outcome: Result<i32, ClientError> = match (cmd, args) {
        ("ping", []) => client.ping().map(|()| {
            println!("pong");
            0
        }),
        ("stats", []) => client.stats().map(|s| {
            println!("{s}");
            0
        }),
        ("metrics", []) => client.metrics().map(|s| {
            print!("{s}");
            0
        }),
        // `flight` — one-shot with no extra args, or a reconnecting watch
        // of the flight recorder with `[interval-ms] [rounds]`.
        ("flight", []) => client.flight().map(|s| {
            println!("{s}");
            0
        }),
        ("flight", tail) if tail.len() <= 2 => {
            let Some((interval_ms, rounds)) = parse_watch_args(tail) else {
                return 2;
            };
            watch_loop("lux-flight", addr, interval_ms, rounds, || client.flight())
        }
        // `top` — a lux-top-style watch loop: redraw stats + the flight
        // recorder every `interval-ms` (default 1000), forever or for a
        // bounded number of rounds (handy for scripts and tests). Survives
        // a server restart: the loop reconnects instead of exiting.
        ("top", tail) if tail.len() <= 2 => {
            let Some((interval_ms, rounds)) = parse_watch_args(tail) else {
                return 2;
            };
            watch_loop("lux-top", addr, interval_ms, rounds, || {
                let s = client.stats()?;
                let f = client.flight()?;
                Ok(format!("{s}\n{f}"))
            })
        }
        ("shutdown", []) => client.shutdown().map(|()| {
            println!("shutting down");
            0
        }),
        ("list", [tenant]) => client.hello(tenant).and_then(|_| {
            client.list_frames().map(|names| {
                for n in &names {
                    println!("{n}");
                }
                0
            })
        }),
        ("put", [tenant, name, path]) => {
            let csv = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("lux-client: read {path}: {e}");
                    return 2;
                }
            };
            client.hello(tenant).and_then(|_| {
                client.put_frame_durable(name, &csv).map(|ack| {
                    println!(
                        "stored {name}: {} rows x {} cols (fingerprint {:016x}, journal seq {})",
                        ack.rows, ack.cols, ack.fingerprint, ack.seq
                    );
                    if ack.seq == 0 {
                        eprintln!(
                            "lux-client: warning: server persistence is degraded; \
                                   the frame is served from memory only"
                        );
                    }
                    0
                })
            })
        }
        ("drop", [tenant, name]) => client.hello(tenant).and_then(|_| {
            client.drop_frame(name).map(|existed| {
                println!("{}", if existed { "dropped" } else { "not found" });
                if existed {
                    0
                } else {
                    1
                }
            })
        }),
        ("print", [tenant, name, tail @ ..]) if tail.len() <= 3 => {
            let intent = tail.first().map(String::as_str).unwrap_or("");
            let deadline_ms = match tail.get(1) {
                Some(d) => match d.parse::<u64>() {
                    Ok(v) => v,
                    Err(_) => {
                        eprintln!("lux-client: bad deadline {d:?} (want milliseconds)");
                        return 2;
                    }
                },
                None => 0,
            };
            let trace = tail.get(2).map(String::as_str).unwrap_or("");
            client.hello(tenant).and_then(|draining| {
                if draining {
                    eprintln!("lux-client: note: server is draining");
                }
                client
                    .print_traced(name, intent, deadline_ms, 3, trace)
                    .map(|out| match out {
                        PrintOutcome::Widget(w) => {
                            println!("{}", w.render());
                            0
                        }
                        PrintOutcome::Busy { reason, trace } => {
                            eprintln!("lux-client: shed [{trace}]: {reason}");
                            3
                        }
                        PrintOutcome::Error(code, message) => {
                            eprintln!("lux-client: error ({code:?}): {message}");
                            1
                        }
                    })
            })
        }
        _ => {
            eprintln!("{usage}");
            return 2;
        }
    };
    match outcome {
        Ok(code) => code,
        Err(e) => {
            eprintln!("lux-client: {e}");
            1
        }
    }
}
