//! Command language and evaluator for the interactive shell.
//!
//! The shell is this reproduction's stand-in for the paper's notebook
//! frontend: the user alternates dataframe operations with prints, and
//! every print is always-on. Commands operate on a session of named frames
//! (like notebook variables).

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use lux_core::prelude::*;
use lux_dataframe::sql::query_frame;

/// A parsed shell command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `load <path> [as <name>] [--permissive]` — read a CSV into the
    /// session; `--permissive` repairs malformed records instead of failing
    /// and reports each repair.
    Load {
        path: String,
        name: String,
        permissive: bool,
    },
    /// `demo <airbnb|communities|wide> [rows] [as <name>]` — synth dataset.
    Demo {
        which: String,
        rows: usize,
        name: String,
    },
    /// `print [name]` — the always-on print (table + Lux view).
    Print { name: Option<String> },
    /// `table [name]` — just the table view.
    Table { name: Option<String> },
    /// `profile [name]` — metadata + overview charts.
    Profile { name: Option<String> },
    /// `health [name]` — per-action health of the last recommendation pass.
    Health { name: Option<String> },
    /// `trace [last|save <path>]` — span tree of the last print pass
    /// (flame-style text, or Chrome `trace_event` JSON written to a file).
    Trace { save: Option<String> },
    /// `stats` — process-wide engine metrics (counters + latency histograms).
    Stats,
    /// `intent <clause>, <clause>, ...` — set the intent on the current frame.
    Intent { clauses: Vec<String> },
    /// `clear-intent`
    ClearIntent,
    /// `vis <clause>, <clause>, ...` — build one chart immediately.
    Vis { clauses: Vec<String> },
    /// `filter <column> <op> <value>` — derive a filtered frame (becomes current).
    Filter {
        column: String,
        op: FilterOp,
        value: String,
    },
    /// `groupby <key> <agg> <column>` — derive an aggregated frame.
    GroupBy {
        key: String,
        agg: Agg,
        column: String,
    },
    /// `head <n>`
    Head { n: usize },
    /// `sql <query>` — run SQL against the current frame (table `t`).
    Sql { query: String },
    /// `export <action> <rank> [<path>]` — export a vis as code (and vega to a file).
    Export {
        action: String,
        rank: usize,
        path: Option<String>,
    },
    /// `save-report <path>` — write the HTML report of the current frame.
    SaveReport { path: String },
    /// `frames` — list session frames.
    Frames,
    /// `use <name>` — switch the current frame.
    Use { name: String },
    /// `help`
    Help,
    /// `quit` / `exit`
    Quit,
}

/// Parse one command line.
pub fn parse_command(line: &str) -> Result<Command> {
    let line = line.trim();
    let (head, rest) = match line.split_once(char::is_whitespace) {
        Some((h, r)) => (h, r.trim()),
        None => (line, ""),
    };
    let word = |s: &str| -> Vec<String> { s.split_whitespace().map(|w| w.to_string()).collect() };
    match head.to_ascii_lowercase().as_str() {
        "" => Err(Error::Parse("empty command".into())),
        "load" => {
            let mut parts = word(rest);
            let permissive = parts.iter().any(|p| p == "--permissive");
            parts.retain(|p| p != "--permissive");
            match parts.as_slice() {
                [path] => Ok(Command::Load {
                    path: path.clone(),
                    name: "df".into(),
                    permissive,
                }),
                [path, as_kw, name] if as_kw.eq_ignore_ascii_case("as") => Ok(Command::Load {
                    path: path.clone(),
                    name: name.clone(),
                    permissive,
                }),
                _ => Err(Error::Parse(
                    "usage: load <path> [as <name>] [--permissive]".into(),
                )),
            }
        }
        "demo" => {
            let parts = word(rest);
            let (which, mut rows, mut name) = match parts.first() {
                Some(w) => (w.clone(), 5_000usize, "df".to_string()),
                None => {
                    return Err(Error::Parse(
                        "usage: demo <airbnb|communities|wide> [rows] [as <name>]".into(),
                    ))
                }
            };
            let mut i = 1;
            if let Some(n) = parts.get(i).and_then(|p| p.parse::<usize>().ok()) {
                rows = n;
                i += 1;
            }
            if parts.get(i).is_some_and(|p| p.eq_ignore_ascii_case("as")) {
                name = parts
                    .get(i + 1)
                    .cloned()
                    .ok_or_else(|| Error::Parse("expected a name after 'as'".into()))?;
            }
            Ok(Command::Demo { which, rows, name })
        }
        "print" => Ok(Command::Print {
            name: word(rest).first().cloned(),
        }),
        "table" => Ok(Command::Table {
            name: word(rest).first().cloned(),
        }),
        "profile" => Ok(Command::Profile {
            name: word(rest).first().cloned(),
        }),
        "health" => Ok(Command::Health {
            name: word(rest).first().cloned(),
        }),
        "trace" => {
            let parts = word(rest);
            match parts.as_slice() {
                [] => Ok(Command::Trace { save: None }),
                [last] if last.eq_ignore_ascii_case("last") => Ok(Command::Trace { save: None }),
                [save, path] if save.eq_ignore_ascii_case("save") => Ok(Command::Trace {
                    save: Some(path.clone()),
                }),
                _ => Err(Error::Parse("usage: trace [last|save <path>]".into())),
            }
        }
        "stats" => Ok(Command::Stats),
        "intent" => {
            let clauses: Vec<String> = rest
                .split(',')
                .map(|c| c.trim().to_string())
                .filter(|c| !c.is_empty())
                .collect();
            if clauses.is_empty() {
                return Err(Error::Parse(
                    "usage: intent <clause>[, <clause> ...]".into(),
                ));
            }
            Ok(Command::Intent { clauses })
        }
        "clear-intent" => Ok(Command::ClearIntent),
        "vis" => {
            let clauses: Vec<String> = rest
                .split(',')
                .map(|c| c.trim().to_string())
                .filter(|c| !c.is_empty())
                .collect();
            if clauses.is_empty() {
                return Err(Error::Parse("usage: vis <clause>[, <clause> ...]".into()));
            }
            Ok(Command::Vis { clauses })
        }
        "filter" => {
            // filter <column><op><value> or filter <column> <op> <value>
            let compact = rest.replace(' ', "");
            match lux_intent::parse_clause(&compact)? {
                lux_intent::Clause::Filter {
                    attribute,
                    op,
                    value: lux_intent::ValueSpec::One(v),
                } => Ok(Command::Filter {
                    column: attribute,
                    op,
                    value: v.to_string(),
                }),
                _ => Err(Error::Parse("usage: filter <column><op><value>".into())),
            }
        }
        "groupby" => {
            let parts = word(rest);
            match parts.as_slice() {
                [key, agg, column] => {
                    let agg = parse_agg(agg)?;
                    Ok(Command::GroupBy {
                        key: key.clone(),
                        agg,
                        column: column.clone(),
                    })
                }
                _ => Err(Error::Parse(
                    "usage: groupby <key> <mean|sum|count|...> <column>".into(),
                )),
            }
        }
        "head" => {
            let n = word(rest)
                .first()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| Error::Parse("usage: head <n>".into()))?;
            Ok(Command::Head { n })
        }
        "sql" => {
            if rest.is_empty() {
                return Err(Error::Parse("usage: sql <SELECT ...>".into()));
            }
            Ok(Command::Sql {
                query: rest.to_string(),
            })
        }
        "export" => {
            let parts = word(rest);
            match parts.as_slice() {
                [action, rank] => Ok(Command::Export {
                    action: action.clone(),
                    rank: rank
                        .parse()
                        .map_err(|_| Error::Parse("rank must be a number".into()))?,
                    path: None,
                }),
                [action, rank, path] => Ok(Command::Export {
                    action: action.clone(),
                    rank: rank
                        .parse()
                        .map_err(|_| Error::Parse("rank must be a number".into()))?,
                    path: Some(path.clone()),
                }),
                _ => Err(Error::Parse(
                    "usage: export <action> <rank> [<file.json>]".into(),
                )),
            }
        }
        "save-report" => {
            let parts = word(rest);
            match parts.as_slice() {
                [path] => Ok(Command::SaveReport { path: path.clone() }),
                _ => Err(Error::Parse("usage: save-report <file.html>".into())),
            }
        }
        "frames" => Ok(Command::Frames),
        "use" => {
            let parts = word(rest);
            match parts.as_slice() {
                [name] => Ok(Command::Use { name: name.clone() }),
                _ => Err(Error::Parse("usage: use <name>".into())),
            }
        }
        "help" | "?" => Ok(Command::Help),
        "quit" | "exit" => Ok(Command::Quit),
        other => Err(Error::Parse(format!(
            "unknown command {other:?} (try 'help')"
        ))),
    }
}

fn parse_agg(s: &str) -> Result<Agg> {
    match s.to_ascii_lowercase().as_str() {
        "count" => Ok(Agg::Count),
        "sum" => Ok(Agg::Sum),
        "mean" | "avg" => Ok(Agg::Mean),
        "min" => Ok(Agg::Min),
        "max" => Ok(Agg::Max),
        "var" => Ok(Agg::Var),
        "std" => Ok(Agg::Std),
        "median" => Ok(Agg::Median),
        other => Err(Error::Parse(format!("unknown aggregation {other:?}"))),
    }
}

pub const HELP: &str = "\
commands:
  load <path> [as <name>] [--permissive]  read a CSV (--permissive repairs bad rows)
  demo <airbnb|communities|wide> [rows] [as <name>]
  print [name]                     always-on print (table + Lux view)
  table [name]                     table view only
  profile [name]                   per-column metadata + overview charts
  health [name]                    per-action health (ok/degraded/failed/disabled)
  trace [last|save <path>]         span tree of the last print (save = Chrome JSON)
  stats                            process-wide engine metrics (counters, latencies)
  intent <clause>[, <clause>...]   e.g. intent price, room_type=?
  clear-intent
  vis <clause>[, <clause>...]      build one chart now
  filter <col><op><value>          derive a filtered frame (becomes current)
  groupby <key> <agg> <column>     derive an aggregate frame
  head <n>                         derive the first n rows
  sql <SELECT ... FROM t ...>      ad-hoc SQL over the current frame
  export <action> <rank> [<file>]  export a chart as code (+ vega json file)
  save-report <file.html>          standalone HTML report
  frames / use <name>              manage session frames
  help / quit";

/// The shell session: named frames plus the "current" frame, mirroring a
/// notebook's variables and the most recent cell.
pub struct Shell {
    frames: HashMap<String, LuxDataFrame>,
    current: Option<String>,
    derived_counter: usize,
}

impl Default for Shell {
    fn default() -> Self {
        Shell::new()
    }
}

impl Shell {
    pub fn new() -> Shell {
        Shell {
            frames: HashMap::new(),
            current: None,
            derived_counter: 0,
        }
    }

    pub fn current_name(&self) -> Option<&str> {
        self.current.as_deref()
    }

    pub fn frame_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.frames.keys().map(String::as_str).collect();
        names.sort();
        names
    }

    fn current_frame(&self) -> Result<&LuxDataFrame> {
        self.current
            .as_ref()
            .and_then(|n| self.frames.get(n))
            .ok_or_else(|| Error::InvalidArgument("no frame loaded (try 'demo airbnb')".into()))
    }

    fn resolve(&self, name: &Option<String>) -> Result<&LuxDataFrame> {
        match name {
            Some(n) => self
                .frames
                .get(n)
                .ok_or_else(|| Error::InvalidArgument(format!("no frame named {n:?}"))),
            None => self.current_frame(),
        }
    }

    fn adopt(&mut self, base: &str, frame: LuxDataFrame) -> String {
        self.derived_counter += 1;
        let name = format!("{base}_{}", self.derived_counter);
        self.frames.insert(name.clone(), frame);
        self.current = Some(name.clone());
        name
    }

    /// Execute one command, returning the text to show the user. `Quit`
    /// returns `None`.
    pub fn execute(&mut self, cmd: Command) -> Result<Option<String>> {
        match cmd {
            Command::Quit => Ok(None),
            Command::Help => Ok(Some(HELP.to_string())),
            Command::Load {
                path,
                name,
                permissive,
            } => {
                let (df, repairs) = if permissive {
                    let (df, report) = LuxDataFrame::read_csv_permissive(Path::new(&path))?;
                    let repairs = if report.is_clean() {
                        String::new()
                    } else {
                        format!("\n{}", report).trim_end().to_string()
                    };
                    (df, repairs)
                } else {
                    (LuxDataFrame::read_csv(Path::new(&path))?, String::new())
                };
                let shape = format!(
                    "loaded {name}: {} rows x {} cols{repairs}",
                    df.num_rows(),
                    df.num_columns()
                );
                self.frames.insert(name.clone(), df);
                self.current = Some(name);
                Ok(Some(shape))
            }
            Command::Demo { which, rows, name } => {
                let df = match which.to_ascii_lowercase().as_str() {
                    "airbnb" => lux_workloads::airbnb(rows, 42),
                    "communities" => lux_workloads::communities(rows, 42),
                    "wide" => lux_workloads::synthetic_wide(40, rows, 42),
                    other => {
                        return Err(Error::InvalidArgument(format!(
                            "unknown demo dataset {other:?}"
                        )))
                    }
                };
                let ldf = LuxDataFrame::new(df);
                let shape = format!(
                    "generated {name}: {} rows x {} cols",
                    ldf.num_rows(),
                    ldf.num_columns()
                );
                self.frames.insert(name.clone(), ldf);
                self.current = Some(name);
                Ok(Some(shape))
            }
            Command::Print { name } => {
                let widget = self.resolve(&name)?.print();
                Ok(Some(format!("{widget}\n{}", widget.render_lux_view(1))))
            }
            Command::Table { name } => Ok(Some(self.resolve(&name)?.print().table().to_string())),
            Command::Profile { name } => Ok(Some(self.resolve(&name)?.profile())),
            Command::Health { name } => {
                let health = self.resolve(&name)?.action_health();
                let mut out = if health.is_empty() {
                    String::from("all actions healthy (no health entries)")
                } else {
                    let mut out = String::from("action health:");
                    for h in health.iter() {
                        out.push_str(&format!("\n  {h}"));
                    }
                    out
                };
                out.push('\n');
                out.push_str(
                    &lux_engine::AdmissionController::global()
                        .stats()
                        .render_text(),
                );
                Ok(Some(out))
            }
            Command::Trace { save } => {
                let frame = self.current_frame()?;
                let trace = frame.last_trace().ok_or_else(|| {
                    Error::InvalidArgument("no trace recorded yet (run 'print' first)".into())
                })?;
                match save {
                    Some(path) => {
                        std::fs::write(&path, trace.to_chrome_json())
                            .map_err(|e| Error::InvalidArgument(format!("write {path:?}: {e}")))?;
                        Ok(Some(format!(
                            "chrome trace written to {path} (load in about://tracing or ui.perfetto.dev)"
                        )))
                    }
                    None => Ok(Some(trace.render_text())),
                }
            }
            Command::Stats => Ok(Some(format!(
                "{}\n{}",
                MetricsRegistry::global().snapshot().render_text(),
                lux_engine::AdmissionController::global()
                    .stats()
                    .render_text()
            ))),
            Command::Intent { clauses } => {
                let current = self
                    .current
                    .clone()
                    .ok_or_else(|| Error::InvalidArgument("no frame loaded".into()))?;
                let frame = self.frames.get_mut(&current).expect("current exists");
                frame.set_intent_strs(&clauses)?;
                let diags = frame.validate_intent();
                let mut out = format!("intent set on {current}");
                for d in diags {
                    out.push_str(&format!("\n  note: {}", d.message));
                    if let Some(s) = d.suggestion {
                        out.push_str(&format!(" (did you mean {s:?}?)"));
                    }
                }
                Ok(Some(out))
            }
            Command::ClearIntent => {
                let current = self
                    .current
                    .clone()
                    .ok_or_else(|| Error::InvalidArgument("no frame loaded".into()))?;
                self.frames
                    .get_mut(&current)
                    .expect("current exists")
                    .clear_intent();
                Ok(Some("intent cleared".into()))
            }
            Command::Vis { clauses } => {
                let vis = LuxVis::from_strs(&clauses, self.current_frame()?)?;
                Ok(Some(vis.render_ascii()))
            }
            Command::Filter { column, op, value } => {
                let parsed = lux_intent::parse_value(&value);
                let derived = self.current_frame()?.filter(&column, op, &parsed)?;
                let rows = derived.num_rows();
                let name = self.adopt("filtered", derived);
                Ok(Some(format!("-> {name}: {rows} rows (now current)")))
            }
            Command::GroupBy { key, agg, column } => {
                let derived = self
                    .current_frame()?
                    .groupby_agg(&[&key], &[(&column, agg)])?;
                let rows = derived.num_rows();
                let name = self.adopt("grouped", derived);
                Ok(Some(format!("-> {name}: {rows} groups (now current)")))
            }
            Command::Head { n } => {
                let derived = self.current_frame()?.head(n);
                let name = self.adopt("head", derived);
                Ok(Some(format!("-> {name} (now current)")))
            }
            Command::Sql { query } => {
                let out = query_frame(&query, self.current_frame()?.data())?;
                Ok(Some(out.to_table_string(20)))
            }
            Command::Export { action, rank, path } => {
                let frame = self.current_frame()?;
                let vis = frame.export(&action, rank)?;
                let code = lux_vis::render::code::to_rust_code(&vis.spec);
                let mut out = code;
                if let Some(p) = path {
                    std::fs::write(&p, lux_vis::render::vega::to_vega_lite(&vis))
                        .map_err(|e| Error::InvalidArgument(format!("write {p:?}: {e}")))?;
                    out.push_str(&format!("\n(vega-lite json written to {p})"));
                }
                Ok(Some(out))
            }
            Command::SaveReport { path } => {
                self.current_frame()?
                    .print()
                    .save_html(Path::new(&path))
                    .map_err(|e| Error::InvalidArgument(format!("write {path:?}: {e}")))?;
                Ok(Some(format!("report written to {path}")))
            }
            Command::Frames => {
                let mut out = String::from("frames:");
                for n in self.frame_names() {
                    let f = &self.frames[n];
                    let marker = if Some(n) == self.current_name() {
                        "*"
                    } else {
                        " "
                    };
                    out.push_str(&format!(
                        "\n {marker} {n}: {} rows x {} cols",
                        f.num_rows(),
                        f.num_columns()
                    ));
                }
                Ok(Some(out))
            }
            Command::Use { name } => {
                if !self.frames.contains_key(&name) {
                    return Err(Error::InvalidArgument(format!("no frame named {name:?}")));
                }
                self.current = Some(name.clone());
                Ok(Some(format!("current frame: {name}")))
            }
        }
    }

    /// Register a frame directly (used by tests and startup arguments).
    pub fn insert(&mut self, name: &str, df: lux_dataframe::DataFrame) {
        self.frames.insert(name.to_string(), LuxDataFrame::new(df));
        self.current = Some(name.to_string());
    }

    /// Register with a custom config (e.g. SQL backend shells).
    pub fn insert_with_config(
        &mut self,
        name: &str,
        df: lux_dataframe::DataFrame,
        config: Arc<LuxConfig>,
    ) {
        self.frames
            .insert(name.to_string(), LuxDataFrame::with_config(df, config));
        self.current = Some(name.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> lux_dataframe::DataFrame {
        DataFrameBuilder::new()
            .str("dept", ["Sales", "Eng", "Sales", "HR"])
            .float("pay", [50.0, 80.0, 60.0, 55.0])
            .build()
            .unwrap()
    }

    #[test]
    fn parse_basics() {
        assert_eq!(
            parse_command("load data.csv as hpi").unwrap(),
            Command::Load {
                path: "data.csv".into(),
                name: "hpi".into(),
                permissive: false
            }
        );
        assert_eq!(
            parse_command("load data.csv --permissive").unwrap(),
            Command::Load {
                path: "data.csv".into(),
                name: "df".into(),
                permissive: true
            }
        );
        assert_eq!(
            parse_command("print").unwrap(),
            Command::Print { name: None }
        );
        assert_eq!(
            parse_command("demo airbnb 1000 as a").unwrap(),
            Command::Demo {
                which: "airbnb".into(),
                rows: 1000,
                name: "a".into()
            }
        );
        assert_eq!(
            parse_command("intent pay, dept=Sales").unwrap(),
            Command::Intent {
                clauses: vec!["pay".into(), "dept=Sales".into()]
            }
        );
        assert_eq!(
            parse_command("filter pay >= 55").unwrap(),
            Command::Filter {
                column: "pay".into(),
                op: FilterOp::Ge,
                value: "55".into()
            }
        );
        assert_eq!(
            parse_command("groupby dept mean pay").unwrap(),
            Command::GroupBy {
                key: "dept".into(),
                agg: Agg::Mean,
                column: "pay".into()
            }
        );
        assert_eq!(parse_command("quit").unwrap(), Command::Quit);
        assert!(parse_command("bogus").is_err());
        assert!(parse_command("").is_err());
    }

    #[test]
    fn shell_session_flow() {
        let mut shell = Shell::new();
        shell.insert("df", sample());
        // print works and shows tabs
        let out = shell
            .execute(parse_command("print").unwrap())
            .unwrap()
            .unwrap();
        assert!(out.contains("recommendation tab"));
        // intent -> current vis
        let out = shell
            .execute(parse_command("intent pay, dept").unwrap())
            .unwrap()
            .unwrap();
        assert!(out.contains("intent set"));
        // derive: filter becomes current
        let out = shell
            .execute(parse_command("filter pay>=55").unwrap())
            .unwrap()
            .unwrap();
        assert!(out.contains("3 rows"));
        assert!(shell.current_name().unwrap().starts_with("filtered_"));
        // groupby
        let out = shell
            .execute(parse_command("use df").unwrap())
            .unwrap()
            .unwrap();
        assert!(out.contains("df"));
        let out = shell
            .execute(parse_command("groupby dept mean pay").unwrap())
            .unwrap()
            .unwrap();
        assert!(out.contains("3 groups"));
        // frames listing shows everything
        let out = shell.execute(Command::Frames).unwrap().unwrap();
        assert!(out.contains("df") && out.contains("filtered_1") && out.contains("grouped_2"));
    }

    #[test]
    fn shell_sql_and_vis() {
        let mut shell = Shell::new();
        shell.insert("df", sample());
        let out = shell
            .execute(parse_command("sql SELECT dept, COUNT(*) AS n FROM t GROUP BY dept").unwrap())
            .unwrap()
            .unwrap();
        assert!(out.contains("Sales"));
        let out = shell
            .execute(parse_command("vis pay, dept").unwrap())
            .unwrap()
            .unwrap();
        assert!(out.contains('█'));
    }

    #[test]
    fn shell_errors_are_reported_not_fatal() {
        let mut shell = Shell::new();
        assert!(shell.execute(parse_command("print").unwrap()).is_err()); // no frame
        shell.insert("df", sample());
        assert!(shell.execute(parse_command("use nope").unwrap()).is_err());
        assert!(shell
            .execute(parse_command("filter nope=1").unwrap())
            .is_err());
        // session still usable
        assert!(shell
            .execute(parse_command("table").unwrap())
            .unwrap()
            .is_some());
    }

    #[test]
    fn health_command_reports_action_status() {
        assert_eq!(
            parse_command("health").unwrap(),
            Command::Health { name: None }
        );
        let mut shell = Shell::new();
        shell.insert("df", sample());
        let out = shell
            .execute(parse_command("health").unwrap())
            .unwrap()
            .unwrap();
        // healthy defaults: every entry reads "<action>: ok"
        assert!(out.contains(": ok"), "got: {out}");
        assert!(!out.contains("failed"));
    }

    #[test]
    fn quit_returns_none() {
        let mut shell = Shell::new();
        assert!(shell.execute(Command::Quit).unwrap().is_none());
    }

    #[test]
    fn tight_budget_surfaces_governor_marker() {
        let mut shell = Shell::new();
        let mut config = LuxConfig::default();
        config.budget.max_bytes = 1; // everything over budget from byte one
        shell.insert_with_config("df", sample(), Arc::new(config));
        let out = shell
            .execute(parse_command("print").unwrap())
            .unwrap()
            .unwrap();
        // the pass completes (no panic, tabs still render) and the widget
        // carries the degradation marker
        assert!(out.contains("governor"), "got: {out}");
        // the always-on metrics picked the degradations up too
        let stats = shell.execute(Command::Stats).unwrap().unwrap();
        assert!(stats.contains("lux.governor"), "{stats}");
    }

    #[test]
    fn trace_command_parses_and_renders() {
        assert_eq!(
            parse_command("trace").unwrap(),
            Command::Trace { save: None }
        );
        assert_eq!(
            parse_command("trace last").unwrap(),
            Command::Trace { save: None }
        );
        assert_eq!(
            parse_command("trace save /tmp/t.json").unwrap(),
            Command::Trace {
                save: Some("/tmp/t.json".into())
            }
        );
        assert!(parse_command("trace bogus").is_err());

        let mut shell = Shell::new();
        shell.insert("df", sample());
        // before any print there is no trace
        assert!(shell.execute(Command::Trace { save: None }).is_err());
        let _ = shell.execute(parse_command("print").unwrap()).unwrap();
        let out = shell
            .execute(Command::Trace { save: None })
            .unwrap()
            .unwrap();
        assert!(out.contains("print"), "{out}");
        assert!(out.contains("actions"), "{out}");
        // chrome export writes a JSON array
        let dir = std::env::temp_dir().join("lux_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let cmd = Command::Trace {
            save: Some(path.to_string_lossy().into_owned()),
        };
        let out = shell.execute(cmd).unwrap().unwrap();
        assert!(out.contains("written"));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.trim_start().starts_with('[') && json.trim_end().ends_with(']'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_command_reports_metrics() {
        assert_eq!(parse_command("stats").unwrap(), Command::Stats);
        let mut shell = Shell::new();
        shell.insert("df", sample());
        let _ = shell.execute(parse_command("print").unwrap()).unwrap();
        let out = shell.execute(Command::Stats).unwrap().unwrap();
        assert!(out.contains("lux.prints"), "{out}");
        assert!(out.contains("lux.print.latency"), "{out}");
    }
}
