//! Regenerates **Figure 6**: the specification burden for Q3 ("compare
//! average Age across Education levels") across specification styles —
//! Lux's intent vs the declarative Vega-Lite spec vs the imperative
//! matplotlib-style workflow. The paper's figure is qualitative (side-by-
//! side code); we print the same side-by-side plus quantitative counts
//! (characters, lines, user-specified visual details).

use lux_core::prelude::*;
use lux_vis::render::{imperative, vega};

fn hr_frame() -> DataFrame {
    DataFrameBuilder::new()
        .float("Age", [25.0, 32.0, 45.0, 52.0, 38.0, 29.0])
        .str("Education", ["BS", "BS", "MS", "PhD", "MS", "BS"])
        .build()
        .unwrap()
}

fn main() {
    let ldf = LuxDataFrame::new(hr_frame());

    // --- Lux: one line of intent; everything else inferred --------------
    let lux_code = r#"Vis(["Age", "Education"], df)"#;
    let vis = LuxVis::from_strs(["Age", "Education"], &ldf).expect("q3 compiles");

    // --- Vega-Lite: the complete declarative spec the user would write --
    let vega_code = vega::to_vega_lite_spec_only(vis.spec());

    // --- Imperative: wrangle + assemble by hand --------------------------
    let imperative_code = r#"let grouped = df.groupby(&["Education"])?.agg(&[("Age", Agg::Mean)])?;
let mut labels = Vec::new();
let mut heights = Vec::new();
for i in 0..grouped.num_rows() {
    labels.push(grouped.value(i, "Education")?.to_string());
    heights.push(grouped.value(i, "Age")?.as_f64().unwrap_or(0.0));
}
let fig = Figure::new()
    .bar(labels, heights)?
    .title("Average Age by Education")
    .xlabel("Education")
    .ylabel("mean(Age)");
println!("{}", fig.show());"#;

    println!("# Figure 6: specification required for Q3, per style\n");
    println!(
        "## Lux intent ({} chars, 1 line)\n{lux_code}\n",
        lux_code.len()
    );
    println!(
        "## Vega-Lite ({} chars, {} lines)\n{vega_code}\n",
        vega_code.len(),
        vega_code.lines().count()
    );
    println!(
        "## Imperative / matplotlib-style ({} chars, {} lines)\n{imperative_code}\n",
        imperative_code.len(),
        imperative_code.lines().count()
    );

    // Prove all three produce the same chart.
    let imperative_render = imperative::q3_imperative(ldf.data()).expect("imperative works");
    println!("## All three agree on the data:");
    println!("{}", vis.render_ascii());
    println!("{imperative_render}");
    println!(
        "summary: Lux {}x shorter than Vega-Lite, {}x shorter than imperative (chars)",
        vega_code.len() / lux_code.len(),
        imperative_code.len() / lux_code.len()
    );
}
