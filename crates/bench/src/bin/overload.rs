//! Multi-session overload benchmark (DESIGN.md §10).
//!
//! Hammers one process with 1, 8, and 32 concurrent sessions printing cold
//! frames and reports per-print latency percentiles plus the admission
//! controller's decision counts at each level. Writes `BENCH_overload.json`
//! so `scripts/bench_compare.sh` can gate the single-session p50 against
//! the committed baseline — the admission layer must stay invisible to an
//! idle engine.
//!
//! Scales: `LUX_OVERLOAD_ROWS` (rows per frame), `LUX_OVERLOAD_ITERS`
//! (prints per session), `LUX_OVERLOAD_SESSIONS` (comma-separated
//! concurrency levels), `LUX_BENCH_FULL=1` for the bigger defaults.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lux_bench::{env_scales, full_scale, print_table};
use lux_core::prelude::*;
use lux_engine::trace::{names, MetricsRegistry};
use lux_engine::AdmissionController;
use lux_workloads::synthetic_wide;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

struct Level {
    sessions: usize,
    p50: Duration,
    p99: Duration,
    served: u64,
    shed: u64,
    total: Duration,
}

fn run(sessions: usize, rows: usize, cols: usize, iters: usize) -> Level {
    let metrics = MetricsRegistry::global();
    let admits0 = metrics.counter(names::ADMISSION_ADMITS);
    let sheds0 = metrics.counter(names::ADMISSION_SHEDS);
    let started = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|s| {
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(iters);
                for i in 0..iters {
                    // Fresh frame per print: memo cold, full pipeline.
                    let df = synthetic_wide(cols, rows, (s * 1_000 + i) as u64 + 11);
                    let ldf = LuxDataFrame::with_config(df, Arc::new(LuxConfig::all_opt()));
                    let t = Instant::now();
                    let widget = ldf.print();
                    std::hint::black_box(widget.table().len());
                    latencies.push(t.elapsed());
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("session panicked"))
        .collect();
    let total = started.elapsed();
    latencies.sort();
    Level {
        sessions,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        served: metrics.counter(names::ADMISSION_ADMITS) - admits0,
        shed: metrics.counter(names::ADMISSION_SHEDS) - sheds0,
        total,
    }
}

fn main() {
    let (rows, cols, iters) = if full_scale() {
        (50_000usize, 16usize, 20usize)
    } else {
        (4_000, 8, 8)
    };
    let rows = env_scales("LUX_OVERLOAD_ROWS", &[rows])[0];
    let iters = env_scales("LUX_OVERLOAD_ITERS", &[iters])[0];
    let levels = env_scales("LUX_OVERLOAD_SESSIONS", &[1, 8, 32]);
    let cfg = AdmissionController::global().config();
    println!(
        "# Overload: concurrent sessions vs print latency ({rows} rows x {cols} cols, \
         {iters} prints/session, {} slots, {}MiB global cap)\n",
        cfg.max_sessions,
        cfg.max_global_bytes >> 20
    );

    let runs: Vec<Level> = levels.iter().map(|&n| run(n, rows, cols, iters)).collect();

    let mut rows_out: Vec<Vec<String>> = Vec::new();
    let mut json = String::from("{\n  \"runs\": [\n");
    for (k, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"sessions\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"admits\": {}, \
             \"sheds\": {}, \"wall_ms\": {}}}",
            r.sessions,
            ms(r.p50),
            ms(r.p99),
            r.served,
            r.shed,
            ms(r.total)
        ));
        json.push_str(if k + 1 < runs.len() { ",\n" } else { "\n" });
        rows_out.push(vec![
            format!("sessions={}", r.sessions),
            ms(r.p50),
            ms(r.p99),
            r.served.to_string(),
            r.shed.to_string(),
            ms(r.total),
        ]);
    }
    json.push_str(&format!(
        "  ],\n  \"rows\": {rows},\n  \"columns\": {cols},\n  \"iterations\": {iters},\n  \
         \"slots\": {},\n  \"global_cap_mb\": {}\n}}\n",
        cfg.max_sessions,
        cfg.max_global_bytes >> 20
    ));

    print_table(
        &["config", "p50", "p99", "admits", "sheds", "wall"],
        &rows_out,
    );

    std::fs::write("BENCH_overload.json", &json).expect("write BENCH_overload.json");
    println!("\nwrote BENCH_overload.json");
}
