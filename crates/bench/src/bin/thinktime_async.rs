//! Think-time experiment (not a paper figure, but its §8.2 argument):
//! "users generally spend an average of 28 seconds skimming through the
//! pandas table view before toggling to the Lux view" (median 2.8 s,
//! fn. 2) — so ASYNC only has to beat the user's think time, not zero.
//!
//! This harness measures, for each dataframe width, what fraction of the
//! recommendation work completes within several think-time budgets when
//! results stream cheapest-first, versus the blocking all-at-once wait.

use std::sync::Arc;
use std::time::Instant;

use lux_bench::{fmt_secs, print_table, width_rows};
use lux_core::prelude::*;
use lux_workloads::synthetic_wide;

fn main() {
    let rows = width_rows();
    let widths = [20usize, 60, 120];
    // think-time budgets bracketing the paper's median (2.8 s) and mean (28 s),
    // scaled down alongside the reduced dataframe scales
    let budgets = [0.005f64, 0.02, 0.1];

    println!("# Think-time analysis: streamed tabs ready within a budget ({rows} rows)");
    let mut rows_out = Vec::new();
    for w in widths {
        let df = synthetic_wide(w, rows, 13);
        let mut cfg = LuxConfig::all_opt();
        cfg.sample_cap = (rows / 10).max(200);
        let ldf = LuxDataFrame::with_config(df, Arc::new(cfg));
        let _ = ldf.metadata();

        let start = Instant::now();
        let run = ldf.recommendations_streaming();
        let expected = run.expected();
        let mut arrival_times = Vec::new();
        while let Some(_r) = run.next_result() {
            arrival_times.push(start.elapsed().as_secs_f64());
        }
        let total = arrival_times.last().copied().unwrap_or(0.0);

        let mut row = vec![w.to_string(), expected.to_string(), fmt_secs(total)];
        for b in budgets {
            let ready = arrival_times.iter().filter(|t| **t <= b).count();
            row.push(format!("{ready}/{expected}"));
        }
        rows_out.push(row);
    }
    print_table(
        &[
            "columns",
            "tabs",
            "all done",
            "ready@5ms",
            "ready@20ms",
            "ready@100ms",
        ],
        &rows_out,
    );
    println!("\n(shape: most tabs are ready well inside a human think-time budget even when");
    println!(" the Correlation laggard dominates total completion — the §8.2 ASYNC argument)");
}
