//! Regenerates **Figure 10**, **Figure 11**, and **Table 3** (RQ1):
//! notebook replay under the five conditions, reporting average cell
//! runtime, average dataframe-print time, and the per-cell-type overhead
//! of `all-opt` over `pandas`.
//!
//! Usage:
//!   fig10_11_table3 [--fig10] [--fig11] [--table3]     (default: all)
//!   LUX_BENCH_FULL=1 for the paper's full row scales.

use lux_bench::{airbnb_scales, communities_scales, fmt_secs, print_table};
use lux_workloads::{airbnb_notebook, communities_notebook, CellKind, Condition, Notebook};

struct SweepResult {
    rows: usize,
    /// Per condition: (mean cell, mean df print, mean series print,
    /// total non-lux).
    by_condition: Vec<(Condition, f64, f64, f64, f64)>,
}

fn sweep(make: impl Fn(usize) -> Notebook, scales: &[usize]) -> Vec<SweepResult> {
    let mut out = Vec::new();
    for &rows in scales {
        let nb = make(rows);
        // Paper: cap fixed at 30k against 100k-10M rows. At reduced scale,
        // shrink the cap proportionally so PRUNE still engages.
        let cap = if lux_bench::full_scale() {
            30_000
        } else {
            (rows / 10).max(200)
        };
        let mut by_condition = Vec::new();
        for cond in Condition::ALL {
            let report = nb.run_with_sample_cap(cond, Some(cap));
            by_condition.push((
                cond,
                report.mean_cell_seconds(),
                report.mean_seconds_of(CellKind::PrintDataFrame),
                report.mean_seconds_of(CellKind::PrintSeries),
                report.total_seconds_of(CellKind::NonLux),
            ));
        }
        eprintln!("  swept {rows} rows");
        out.push(SweepResult { rows, by_condition });
    }
    out
}

fn figure10(name: &str, results: &[SweepResult]) {
    println!("\n## Figure 10 ({name}): average notebook cell runtime");
    let header: Vec<&str> = std::iter::once("rows")
        .chain(Condition::ALL.iter().map(|c| c.name()))
        .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut row = vec![r.rows.to_string()];
            row.extend(
                r.by_condition
                    .iter()
                    .map(|(_, mean, _, _, _)| fmt_secs(*mean)),
            );
            row
        })
        .collect();
    print_table(&header, &rows);
    if let Some(last) = results.last() {
        let noopt = last
            .by_condition
            .iter()
            .find(|c| c.0 == Condition::NoOpt)
            .unwrap()
            .1;
        let allopt = last
            .by_condition
            .iter()
            .find(|c| c.0 == Condition::AllOpt)
            .unwrap()
            .1;
        if allopt > 0.0 {
            println!(
                "speedup of all-opt over no-opt at {} rows: {:.1}x (paper: 11x Airbnb / 345x Communities)",
                last.rows,
                noopt / allopt
            );
        }
    }
}

fn figure11(name: &str, results: &[SweepResult]) {
    println!("\n## Figure 11 ({name}): average time for printing a single dataframe");
    let header: Vec<&str> = std::iter::once("rows")
        .chain(Condition::ALL.iter().map(|c| c.name()))
        .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut row = vec![r.rows.to_string()];
            row.extend(
                r.by_condition
                    .iter()
                    .map(|(_, _, dfp, _, _)| fmt_secs(*dfp)),
            );
            row
        })
        .collect();
    print_table(&header, &rows);
    if let Some(last) = results.last() {
        let pandas = last
            .by_condition
            .iter()
            .find(|c| c.0 == Condition::Pandas)
            .unwrap()
            .2;
        let allopt = last
            .by_condition
            .iter()
            .find(|c| c.0 == Condition::AllOpt)
            .unwrap()
            .2;
        println!(
            "per-print overhead of all-opt vs pandas at {} rows: {} (paper: <=2s under 1M rows)",
            last.rows,
            fmt_secs((allopt - pandas).max(0.0))
        );
    }
}

fn table3(name: &str, results: &[SweepResult], n_df: usize, n_series: usize, n_nonlux: usize) {
    let Some(last) = results.last() else { return };
    println!(
        "\n## Table 3 ({name}, {} rows): per-cell-type overhead of all-opt vs pandas",
        last.rows
    );
    let pandas = last
        .by_condition
        .iter()
        .find(|c| c.0 == Condition::Pandas)
        .unwrap();
    let allopt = last
        .by_condition
        .iter()
        .find(|c| c.0 == Condition::AllOpt)
        .unwrap();
    let rows = vec![
        vec![
            "Print df".to_string(),
            n_df.to_string(),
            fmt_secs(((allopt.2 - pandas.2) * n_df as f64).max(0.0)),
        ],
        vec![
            "Print Series".to_string(),
            n_series.to_string(),
            fmt_secs(((allopt.3 - pandas.3) * n_series as f64).max(0.0)),
        ],
        vec![
            "Non-Lux".to_string(),
            n_nonlux.to_string(),
            fmt_secs((allopt.4 - pandas.4).max(0.0)),
        ],
    ];
    print_table(&["cell type", "N", "overhead"], &rows);
    println!("(paper reports ~0 overhead for non-Lux cells under wflow's lazy evaluation)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    println!("# RQ1: overall workflow performance");
    println!("conditions: {:?}", Condition::ALL.map(|c| c.name()));

    eprintln!("sweeping Airbnb notebook...");
    let airbnb = sweep(|rows| airbnb_notebook(rows, 42), &airbnb_scales());
    eprintln!("sweeping Communities notebook...");
    let communities = sweep(|rows| communities_notebook(rows, 42), &communities_scales());

    if want("--fig10") {
        figure10("Airbnb", &airbnb);
        figure10("Communities", &communities);
    }
    if want("--fig11") {
        figure11("Airbnb", &airbnb);
        figure11("Communities", &communities);
    }
    if want("--table3") {
        table3("Airbnb", &airbnb, 14, 7, 17);
        table3("Communities", &communities, 14, 4, 25);
    }
}
