//! Regenerates **Figure 12 (left)** (RQ2): time for a single dataframe
//! print as the number of columns grows, comparing `no-opt` against
//! `all-opt` (PRUNE + ASYNC), with power-law exponents fitted as in the
//! paper (no-opt power≈2.53, all-opt power≈1.07).
//!
//! Methodology notes, mirroring the paper:
//! - metadata is precomputed before timing ("after the metadata has already
//!   been precomputed");
//! - the `no-opt` curve computes every action's scores exactly and blocks
//!   until all actions finish (footnote 5: no-opt == wflow for a single
//!   print);
//! - the `all-opt` curve applies PRUNE (sampled scoring, exact top-k
//!   recompute) and ASYNC (cost-ordered background workers); the measured
//!   time is when interactive control returns to the user with early
//!   results — i.e. the first completed action — which is exactly the
//!   benefit §8.2 claims for laggard-dominated wide dataframes. Total
//!   completion time is reported alongside.
//! - at reduced scale the sample cap is scaled proportionally (the paper's
//!   30k cap assumes 100k+ rows; a cap above the row count disables PRUNE).

use std::sync::Arc;
use std::time::Instant;

use lux_bench::{fit_power, fmt_secs, full_scale, print_table, width_rows, width_scales};
use lux_core::prelude::*;
use lux_workloads::synthetic_wide;

fn sample_cap_for(rows: usize) -> usize {
    if full_scale() {
        30_000
    } else {
        (rows / 10).max(100)
    }
}

/// Blocking exact print (the no-opt curve).
fn time_print_exact(df: &lux_dataframe::DataFrame) -> f64 {
    let mut cfg = LuxConfig::wflow_only();
    cfg.r#async = false;
    cfg.prune = false;
    let ldf = LuxDataFrame::with_config(df.clone(), Arc::new(cfg));
    let _ = ldf.metadata();
    let start = Instant::now();
    let _ = ldf.recommendations();
    start.elapsed().as_secs_f64()
}

/// Streaming all-opt print: returns (time-to-first-result, time-to-all).
fn time_print_allopt(df: &lux_dataframe::DataFrame) -> (f64, f64) {
    let mut cfg = LuxConfig::all_opt();
    cfg.sample_cap = sample_cap_for(df.num_rows());
    let ldf = LuxDataFrame::with_config(df.clone(), Arc::new(cfg));
    let _ = ldf.metadata();
    let start = Instant::now();
    let run = ldf.recommendations_streaming();
    let _first = run.next_result();
    let first_at = start.elapsed().as_secs_f64();
    let _rest = run.collect_all();
    let all_at = start.elapsed().as_secs_f64();
    (first_at, all_at)
}

fn main() {
    let rows = width_rows();
    let widths = width_scales();
    println!(
        "# RQ2: effect of dataframe width ({rows} rows, paper uses 100k; sample cap {})",
        sample_cap_for(rows)
    );

    let mut table_rows = Vec::new();
    let mut xs = Vec::new();
    let mut noopt_ys = Vec::new();
    let mut allopt_ys = Vec::new();
    for &w in &widths {
        eprintln!("  width {w}...");
        let df = synthetic_wide(w, rows, 7);
        let noopt = time_print_exact(&df);
        let (first, total) = time_print_allopt(&df);
        xs.push(w as f64);
        noopt_ys.push(noopt.max(1e-9));
        allopt_ys.push(first.max(1e-9));
        table_rows.push(vec![
            w.to_string(),
            fmt_secs(noopt),
            fmt_secs(first),
            fmt_secs(total),
            format!("{:.1}x", noopt / first.max(1e-9)),
        ]);
    }

    println!("\n## Figure 12 (left): single print time vs number of columns");
    print_table(
        &[
            "columns",
            "no-opt",
            "all-opt (interactive)",
            "all-opt (complete)",
            "speedup",
        ],
        &table_rows,
    );

    let (_, b_noopt) = fit_power(&xs, &noopt_ys);
    let (_, b_allopt) = fit_power(&xs, &allopt_ys);
    println!("\npower-law fit (runtime ~ columns^power):");
    println!("  no-opt  power = {b_noopt:.2}   (paper: 2.53, superlinear from the quadratic Correlation space)");
    println!("  all-opt power = {b_allopt:.2}   (paper: 1.07, near-linear after prune+async)");
    if b_noopt > b_allopt + 0.2 {
        println!("  shape holds: all-opt scales with a clearly smaller exponent than no-opt");
    } else {
        println!("  WARNING: expected no-opt to scale with a larger exponent");
    }
}
