//! Per-stage breakdown of the print path, measured with the engine's own
//! `PassTrace` spans rather than external stopwatches — the trace subsystem
//! benchmarking itself.
//!
//! Runs repeated cold prints over the synthetic workload frame, pulls the
//! stage totals (metadata / generate / score / process) out of each pass's
//! span tree, times widget rendering around the same pass, and writes the
//! medians to `BENCH_trace.json` next to the working directory, plus a
//! human-readable table and the flame-style rendering of the median pass.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lux_bench::{env_scales, full_scale, print_table};
use lux_core::prelude::*;
use lux_workloads::synthetic_wide;

fn median(samples: &mut Vec<Duration>) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn main() {
    let (rows, cols, iters) = if full_scale() {
        (100_000usize, 24usize, 30usize)
    } else {
        (8_000, 12, 15)
    };
    let rows = env_scales("LUX_TRACE_ROWS", &[rows])[0];
    let iters = env_scales("LUX_TRACE_ITERS", &[iters])[0];
    println!("# Print-path stage breakdown from PassTrace ({rows} rows x {cols} cols, {iters} cold prints)\n");

    let stages = ["table", "metadata", "generate", "score", "process"];
    let mut samples: Vec<Vec<Duration>> = vec![Vec::new(); stages.len()];
    let mut renders: Vec<Duration> = Vec::new();
    let mut totals: Vec<Duration> = Vec::new();
    let mut traces: Vec<Arc<PassTrace>> = Vec::new();

    for i in 0..iters {
        // A fresh frame each iteration keeps the WFLOW memo cold, so every
        // pass exercises the full metadata + recommendation pipeline.
        let df = synthetic_wide(cols, rows, 7_000 + i as u64);
        let ldf = LuxDataFrame::with_config(df, Arc::new(LuxConfig::all_opt()));
        let widget = ldf.print();
        let start = Instant::now();
        std::hint::black_box(widget.render_lux_view(1).len());
        renders.push(start.elapsed());
        let trace = ldf.last_trace().expect("print records a trace");
        for (slot, stage) in samples.iter_mut().zip(stages) {
            slot.push(trace.stage_total(stage));
        }
        totals.push(trace.total());
        traces.push(trace);
    }

    let mut rows_out: Vec<Vec<String>> = Vec::new();
    let mut json = String::from("{\n");
    for (slot, stage) in samples.iter_mut().zip(stages) {
        let med = median(slot);
        rows_out.push(vec![stage.to_string(), ms(med)]);
        json.push_str(&format!("  \"{stage}_ms\": {},\n", ms(med)));
    }
    let render_med = median(&mut renders);
    let total_med = median(&mut totals);
    rows_out.push(vec!["render".into(), ms(render_med)]);
    rows_out.push(vec!["total (pass)".into(), ms(total_med)]);
    json.push_str(&format!("  \"render_ms\": {},\n", ms(render_med)));
    json.push_str(&format!("  \"total_ms\": {},\n", ms(total_med)));
    json.push_str(&format!(
        "  \"rows\": {rows},\n  \"columns\": {cols},\n  \"iterations\": {iters}\n}}\n"
    ));

    print_table(&["stage", "median ms"], &rows_out);

    // The pass whose total sits at the median, rendered flame-style.
    let mut order: Vec<usize> = (0..traces.len()).collect();
    order.sort_by_key(|&i| traces[i].total());
    let median_trace = &traces[order[order.len() / 2]];
    println!("\nmedian pass, flame view:\n{}", median_trace.render_text());

    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    println!("wrote BENCH_trace.json");
}
