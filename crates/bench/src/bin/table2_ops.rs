//! Regenerates **Table 2**: the mapping from visualization type to its
//! primary relational operation, with the measured processing time of each
//! operation on a reference frame — validating that the cost model's
//! relative coefficients reflect reality (selections cheapest, 2D
//! bin+count+group-by most expensive).

use std::time::Instant;

use lux_bench::{env_scales, fmt_secs, full_scale, print_table};
use lux_dataframe::prelude::*;
use lux_engine::{CostModel, SemanticType};
use lux_vis::{process, Channel, Encoding, Mark, ProcessOptions, VisSpec};
use lux_workloads::airbnb;

fn spec_for(vis_type: &str) -> VisSpec {
    let q = SemanticType::Quantitative;
    let n = SemanticType::Nominal;
    match vis_type {
        "Scatterplot" => VisSpec::new(
            Mark::Scatter,
            vec![
                Encoding::new("price", q, Channel::X),
                Encoding::new("number_of_reviews", q, Channel::Y),
            ],
            vec![],
        ),
        "Color Scatterplot" => VisSpec::new(
            Mark::Scatter,
            vec![
                Encoding::new("price", q, Channel::X),
                Encoding::new("number_of_reviews", q, Channel::Y),
                Encoding::new("room_type", n, Channel::Color),
            ],
            vec![],
        ),
        "Line/Bar" => VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("neighbourhood_group", n, Channel::X),
                Encoding::new("price", q, Channel::Y).with_aggregation(Agg::Mean),
            ],
            vec![],
        ),
        "Colored Line/Bar" => VisSpec::new(
            Mark::Bar,
            vec![
                Encoding::new("neighbourhood_group", n, Channel::X),
                Encoding::new("price", q, Channel::Y).with_aggregation(Agg::Mean),
                Encoding::new("room_type", n, Channel::Color),
            ],
            vec![],
        ),
        "Histogram" => VisSpec::new(
            Mark::Histogram,
            vec![
                Encoding::new("price", q, Channel::X).with_bin(10),
                Encoding::synthetic_count(Channel::Y),
            ],
            vec![],
        ),
        "Heatmap" => VisSpec::new(
            Mark::Heatmap,
            vec![
                Encoding::new("price", q, Channel::X).with_bin(20),
                Encoding::new("number_of_reviews", q, Channel::Y).with_bin(20),
            ],
            vec![],
        ),
        "Color Heatmap" => VisSpec::new(
            Mark::Heatmap,
            vec![
                Encoding::new("price", q, Channel::X).with_bin(20),
                Encoding::new("number_of_reviews", q, Channel::Y).with_bin(20),
                Encoding::new("availability_365", q, Channel::Color),
            ],
            vec![],
        ),
        other => panic!("unknown vis type {other}"),
    }
}

fn main() {
    let rows = if full_scale() {
        env_scales("LUX_TABLE2_ROWS", &[1_000_000])[0]
    } else {
        env_scales("LUX_TABLE2_ROWS", &[100_000])[0]
    };
    println!("# Table 2: relational operations per visualization type ({rows} rows)");
    let df = airbnb(rows, 3);
    let opts = ProcessOptions::default();
    let model = CostModel::default();

    let vis_types = [
        "Scatterplot",
        "Color Scatterplot",
        "Line/Bar",
        "Colored Line/Bar",
        "Histogram",
        "Heatmap",
        "Color Heatmap",
    ];

    let mut out = Vec::new();
    let mut measured: Vec<(String, f64)> = Vec::new();
    for vt in vis_types {
        let spec = spec_for(vt);
        let class = spec.op_class();
        // warm + measure best-of-3
        let mut best = f64::MAX;
        for _ in 0..3 {
            let start = Instant::now();
            let data = process(&spec, &df, &opts).expect("processing succeeds");
            let dt = start.elapsed().as_secs_f64();
            best = best.min(dt);
            std::hint::black_box(data.num_rows());
        }
        let est = model.vis_cost(class, rows, 16);
        measured.push((vt.to_string(), best));
        out.push(vec![
            vt.to_string(),
            class.name().to_string(),
            fmt_secs(best),
            format!("{est:.0}"),
        ]);
    }
    print_table(
        &["Vis Type", "Relational Operation", "measured", "model est."],
        &out,
    );

    // Shape check: group-by family should cost more than plain selection.
    let get = |name: &str| measured.iter().find(|m| m.0 == name).unwrap().1;
    let ok =
        get("Scatterplot") <= get("Colored Line/Bar") && get("Histogram") <= get("Color Heatmap");
    println!(
        "\nordering check (selection <= 2D group-by, bin <= colored 2D bin): {}",
        if ok { "holds" } else { "VIOLATED" }
    );
}
