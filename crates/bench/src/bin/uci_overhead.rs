//! Reproduces the paper's **headline claim** (abstract / §9.1): "Lux adds
//! no more than two seconds of overhead on top of pandas for over 98% of
//! datasets in the UCI repository."
//!
//! We draw a population of dataset shapes modeled on the UCI catalog
//! (log-uniform rows and columns, numeric-majority type mix), measure the
//! all-opt print overhead over the plain table rendering for each, and
//! report the overhead distribution against the threshold. At reduced
//! scale the population and the threshold shrink together; with
//! LUX_BENCH_FULL=1 the population spans the paper's upper limits and the
//! threshold is the paper's 2 s.

use std::sync::Arc;
use std::time::Instant;

use lux_bench::{env_scales, fmt_secs, full_scale, print_table};
use lux_core::prelude::*;
use lux_workloads::{materialize, shape_population};

fn main() {
    let (n, row_max, col_max, threshold) = if full_scale() {
        (100usize, 1_000_000usize, 128usize, 2.0f64)
    } else {
        (60, 50_000, 64, 0.5)
    };
    let n = env_scales("LUX_UCI_DATASETS", &[n])[0];
    println!("# Headline claim: print overhead across a UCI-shaped population");
    println!(
        "({n} datasets, rows up to {row_max}, columns up to {col_max}, threshold {threshold}s)\n"
    );

    let shapes = shape_population(n, 50, row_max, col_max, 2026);
    let mut overheads: Vec<(usize, usize, f64)> = Vec::new();
    for (i, shape) in shapes.iter().enumerate() {
        let df = materialize(*shape, 1000 + i as u64);
        // pandas-equivalent cost: render the table only
        let start = Instant::now();
        std::hint::black_box(df.to_table_string(10).len());
        let pandas = start.elapsed().as_secs_f64();
        // all-opt print (cold: metadata + recommendations)
        let mut cfg = LuxConfig::all_opt();
        cfg.sample_cap = (shape.rows / 10).max(500).min(30_000);
        let ldf = LuxDataFrame::with_config(df, Arc::new(cfg));
        let start = Instant::now();
        std::hint::black_box(ldf.print().results().len());
        let lux = start.elapsed().as_secs_f64();
        overheads.push((shape.rows, shape.columns, (lux - pandas).max(0.0)));
        if (i + 1) % 10 == 0 {
            eprintln!("  measured {}/{n}", i + 1);
        }
    }

    let mut sorted: Vec<f64> = overheads.iter().map(|o| o.2).collect();
    sorted.sort_by(f64::total_cmp);
    let pct = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
    let under = sorted.iter().filter(|o| **o <= threshold).count();
    let frac = 100.0 * under as f64 / sorted.len() as f64;

    let worst: Vec<Vec<String>> = {
        let mut by_overhead = overheads.clone();
        by_overhead.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
        by_overhead
            .iter()
            .take(5)
            .map(|(r, c, o)| vec![r.to_string(), c.to_string(), fmt_secs(*o)])
            .collect()
    };

    println!(
        "overhead percentiles: p50 {}  p90 {}  p98 {}  max {}",
        fmt_secs(pct(0.5)),
        fmt_secs(pct(0.9)),
        fmt_secs(pct(0.98)),
        fmt_secs(sorted[sorted.len() - 1])
    );
    println!(
        "\nwithin the {threshold}s threshold: {under}/{} = {frac:.1}%  (paper: >98% within 2s)",
        sorted.len()
    );
    println!("\nheaviest datasets:");
    print_table(&["rows", "columns", "overhead"], &worst);
    if frac >= 98.0 {
        println!("\nheadline claim holds at this scale");
    } else {
        println!("\nWARNING: headline fraction below 98% at this scale");
    }
}
