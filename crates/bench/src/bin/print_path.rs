//! Parallel print-path benchmark (DESIGN.md §9).
//!
//! Runs the same cold-print workload as `trace_stages`, once per thread
//! count, and writes the per-thread-count medians to `BENCH_parallel.json`.
//! Each entry carries the `BENCH_trace.json` stage schema plus a `threads`
//! field, so `scripts/bench_compare.sh` can diff totals against the
//! committed baseline and the threads=1 entry stays directly comparable to
//! `BENCH_trace.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lux_bench::{env_scales, full_scale, print_table};
use lux_core::prelude::*;
use lux_workloads::synthetic_wide;

fn median(samples: &mut Vec<Duration>) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

struct Run {
    threads: usize,
    stage_ms: Vec<(String, String)>,
    render: Duration,
    total: Duration,
}

fn run(threads: usize, rows: usize, cols: usize, iters: usize) -> Run {
    let stages = ["table", "metadata", "generate", "score", "process"];
    let mut samples: Vec<Vec<Duration>> = vec![Vec::new(); stages.len()];
    let mut renders: Vec<Duration> = Vec::new();
    let mut totals: Vec<Duration> = Vec::new();

    for i in 0..iters {
        // A fresh frame each iteration keeps the WFLOW memo (metadata and
        // processed-vis alike) cold, so every pass runs the full pipeline.
        let df = synthetic_wide(cols, rows, 7_000 + i as u64);
        let config = LuxConfig {
            threads,
            ..LuxConfig::all_opt()
        };
        let ldf = LuxDataFrame::with_config(df, Arc::new(config));
        let widget = ldf.print();
        let start = Instant::now();
        std::hint::black_box(widget.render_lux_view(1).len());
        renders.push(start.elapsed());
        let trace = ldf.last_trace().expect("print records a trace");
        for (slot, stage) in samples.iter_mut().zip(stages) {
            slot.push(trace.stage_total(stage));
        }
        totals.push(trace.total());
    }

    Run {
        threads,
        stage_ms: samples
            .iter_mut()
            .zip(stages)
            .map(|(slot, stage)| (stage.to_string(), ms(median(slot))))
            .collect(),
        render: median(&mut renders),
        total: median(&mut totals),
    }
}

fn main() {
    let (rows, cols, iters) = if full_scale() {
        (100_000usize, 24usize, 30usize)
    } else {
        (8_000, 12, 15)
    };
    let rows = env_scales("LUX_TRACE_ROWS", &[rows])[0];
    let iters = env_scales("LUX_TRACE_ITERS", &[iters])[0];
    let thread_counts = env_scales("LUX_BENCH_THREADS", &[1, 4]);
    println!(
        "# Parallel print path ({rows} rows x {cols} cols, {iters} cold prints per thread count)\n"
    );

    let runs: Vec<Run> = thread_counts
        .iter()
        .map(|&t| run(t, rows, cols, iters))
        .collect();

    let mut rows_out: Vec<Vec<String>> = Vec::new();
    let mut json = String::from("{\n  \"runs\": [\n");
    for (k, r) in runs.iter().enumerate() {
        json.push_str(&format!("    {{\"threads\": {},\n", r.threads));
        let mut row = vec![format!("threads={}", r.threads)];
        for (stage, med) in &r.stage_ms {
            json.push_str(&format!("     \"{stage}_ms\": {med},\n"));
            row.push(med.clone());
        }
        json.push_str(&format!("     \"render_ms\": {},\n", ms(r.render)));
        json.push_str(&format!("     \"total_ms\": {}}}", ms(r.total)));
        json.push_str(if k + 1 < runs.len() { ",\n" } else { "\n" });
        row.push(ms(r.render));
        row.push(ms(r.total));
        rows_out.push(row);
    }
    json.push_str(&format!(
        "  ],\n  \"rows\": {rows},\n  \"columns\": {cols},\n  \"iterations\": {iters}\n}}\n"
    ));

    print_table(
        &[
            "config", "table", "metadata", "generate", "score", "process", "render", "total",
        ],
        &rows_out,
    );

    if let (Some(base), Some(par)) = (
        runs.iter().find(|r| r.threads == 1),
        runs.iter().filter(|r| r.threads > 1).last(),
    ) {
        let speedup = base.total.as_secs_f64() / par.total.as_secs_f64().max(1e-9);
        println!(
            "\nspeedup (threads=1 -> threads={}): {speedup:.2}x \
             (on {} available core(s))",
            par.threads,
            std::thread::available_parallelism().map_or(1, |n| n.get())
        );
    }

    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}
