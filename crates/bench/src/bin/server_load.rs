//! Server load benchmark (DESIGN.md §11).
//!
//! Boots one in-process recommendation server, then hammers it over real
//! TCP with 1, 8, and 32 concurrent clients. Each client replays the
//! Table-3 notebook cell mix as wire traffic: `print-df` cells are prints
//! with a rotating intent (so every print does real recommendation work
//! instead of a pure memo hit), dataframe-op cells re-upload a mutated
//! frame, and non-Lux cells touch nothing. Round-trip latency is measured
//! per print, and well-formed sheds (`Busy` responses) are counted.
//!
//! Appends a `"server"` section to `BENCH_overload.json` so
//! `scripts/bench_compare.sh` can gate the single-client round-trip p50
//! against the committed baseline — the wire protocol and registry must
//! stay thin relative to an in-process print.
//!
//! Scales: `LUX_OVERLOAD_ROWS` (rows per frame), `LUX_OVERLOAD_ITERS`
//! (prints per client), `LUX_SERVER_LOAD_CLIENTS` (comma-separated
//! concurrency levels), `LUX_BENCH_FULL=1` for the bigger defaults.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use lux_bench::{env_scales, full_scale, print_table};
use lux_server::{Client, PrintOutcome, Server, ServerConfig};

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// A deterministic numeric CSV: `cols` columns, `rows` rows.
fn make_csv(rows: usize, cols: usize, seed: u64) -> String {
    let mut out = String::with_capacity(rows * cols * 8);
    for c in 0..cols {
        if c > 0 {
            out.push(',');
        }
        out.push_str(&format!("c{c}"));
    }
    out.push('\n');
    let mut state = seed | 1;
    for _ in 0..rows {
        for c in 0..cols {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if c > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}", state % 1_000));
        }
        out.push('\n');
    }
    out
}

struct Level {
    clients: usize,
    p50: Duration,
    p99: Duration,
    served: u64,
    shed: u64,
    total: Duration,
}

fn run(addr: &str, clients: usize, rows: usize, cols: usize, iters: usize) -> Level {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, Duration::from_secs(60)).expect("connect");
                c.hello(&format!("tenant-{i}")).expect("hello");
                let csv = make_csv(rows, cols, (i as u64) * 7 + 11);
                c.put_frame("frame", &csv).expect("put");
                let mut latencies = Vec::with_capacity(iters);
                let mut served = 0u64;
                let mut shed = 0u64;
                for k in 0..iters {
                    // Every few cells the "notebook" mutates its frame (a
                    // dataframe op in Table 3's mix) and re-uploads it; the
                    // cells in between alternate whole-frame prints with
                    // column-intent prints. Re-upload cost is not counted
                    // in print latency, matching the paper's per-cell
                    // accounting.
                    if k > 0 && k % 4 == 0 {
                        let mutated = make_csv(rows, cols, (i as u64) * 7 + 11 + k as u64);
                        c.put_frame("frame", &mutated).expect("re-put");
                    }
                    // Rotate the intent so each print recomputes instead of
                    // replaying the memo — cold-ish work over a warm frame.
                    let intent = if k % 3 == 0 {
                        String::new()
                    } else {
                        format!("c{}", k % cols)
                    };
                    let t = Instant::now();
                    match c.print("frame", &intent, 0, 2).expect("print") {
                        PrintOutcome::Widget(w) => {
                            std::hint::black_box(w.table.len());
                            served += 1;
                        }
                        PrintOutcome::Busy(_) => shed += 1,
                        PrintOutcome::Error(code, msg) => {
                            panic!("typed error mid-benchmark: {code:?} {msg}")
                        }
                    }
                    latencies.push(t.elapsed());
                }
                (latencies, served, shed)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut served = 0u64;
    let mut shed = 0u64;
    for h in handles {
        let (l, sv, sh) = h.join().expect("client panicked");
        latencies.extend(l);
        served += sv;
        shed += sh;
    }
    let total = started.elapsed();
    latencies.sort();
    Level {
        clients,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        served,
        shed,
        total,
    }
}

/// Append (or replace) the `"server"` section of BENCH_overload.json,
/// preserving the in-process overload runs written by `overload`.
fn merge_json(section: &str) {
    let path = "BENCH_overload.json";
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let head = existing
                .split(",\n  \"server\":")
                .next()
                .unwrap_or(&existing)
                .trim_end()
                .trim_end_matches('}')
                .trim_end()
                .to_string();
            format!("{head},\n  \"server\": {section}\n}}\n")
        }
        Err(_) => format!("{{\n  \"server\": {section}\n}}\n"),
    };
    std::fs::write(path, body).expect("write BENCH_overload.json");
}

fn main() {
    let (rows, cols, iters) = if full_scale() {
        (50_000usize, 16usize, 20usize)
    } else {
        (4_000, 8, 8)
    };
    let rows = env_scales("LUX_OVERLOAD_ROWS", &[rows])[0];
    let iters = env_scales("LUX_OVERLOAD_ITERS", &[iters])[0];
    let levels = env_scales("LUX_SERVER_LOAD_CLIENTS", &[1, 8, 32]);

    let data_dir: PathBuf =
        std::env::temp_dir().join(format!("lux_server_load_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: data_dir.clone(),
        read_timeout: Duration::from_secs(30),
        write_timeout: Duration::from_secs(30),
        drain_timeout: Duration::from_secs(5),
        max_conns: 256,
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().expect("run"));

    println!(
        "# Server load: concurrent clients vs round-trip print latency \
         ({rows} rows x {cols} cols, {iters} prints/client, addr {addr})\n"
    );

    let runs: Vec<Level> = levels
        .iter()
        .map(|&n| run(&addr, n, rows, cols, iters))
        .collect();

    shutdown.store(true, Ordering::SeqCst);
    server_thread.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&data_dir);

    let mut rows_out: Vec<Vec<String>> = Vec::new();
    let mut section = String::from("{\n    \"runs\": [\n");
    for (k, r) in runs.iter().enumerate() {
        let shed_rate = r.shed as f64 / (r.served + r.shed).max(1) as f64;
        section.push_str(&format!(
            "      {{\"clients\": {}, \"server_p50_ms\": {}, \"server_p99_ms\": {}, \
             \"served\": {}, \"shed\": {}, \"shed_rate\": {:.3}, \"wall_ms\": {}}}",
            r.clients,
            ms(r.p50),
            ms(r.p99),
            r.served,
            r.shed,
            shed_rate,
            ms(r.total)
        ));
        section.push_str(if k + 1 < runs.len() { ",\n" } else { "\n" });
        rows_out.push(vec![
            format!("clients={}", r.clients),
            ms(r.p50),
            ms(r.p99),
            r.served.to_string(),
            r.shed.to_string(),
            format!("{:.1}%", shed_rate * 100.0),
            ms(r.total),
        ]);
    }
    section.push_str(&format!(
        "    ],\n    \"rows\": {rows},\n    \"columns\": {cols},\n    \"iterations\": {iters}\n  }}"
    ));

    print_table(
        &["config", "p50", "p99", "served", "shed", "shed%", "wall"],
        &rows_out,
    );

    merge_json(&section);
    println!("\nmerged server section into BENCH_overload.json");
}
