//! Server load benchmark (DESIGN.md §11).
//!
//! Boots one in-process recommendation server, then hammers it over real
//! TCP with 1, 8, and 32 concurrent clients. Each client replays the
//! Table-3 notebook cell mix as wire traffic: `print-df` cells are prints
//! with a rotating intent (so every print does real recommendation work
//! instead of a pure memo hit), dataframe-op cells re-upload a mutated
//! frame, and non-Lux cells touch nothing. Round-trip latency is measured
//! per print, and well-formed sheds (`Busy` responses) are counted.
//!
//! Appends a `"server"` section to `BENCH_overload.json` so
//! `scripts/bench_compare.sh` can gate the single-client round-trip p50
//! against the committed baseline — the wire protocol and registry must
//! stay thin relative to an in-process print.
//!
//! Scales: `LUX_OVERLOAD_ROWS` (rows per frame), `LUX_OVERLOAD_ITERS`
//! (prints per client), `LUX_SERVER_LOAD_CLIENTS` (comma-separated
//! concurrency levels), `LUX_BENCH_FULL=1` for the bigger defaults.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use lux_bench::{env_scales, full_scale, print_table};
use lux_engine::FlightRecorder;
use lux_server::{Client, PrintOutcome, Server, ServerConfig};

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// A deterministic numeric CSV: `cols` columns, `rows` rows.
fn make_csv(rows: usize, cols: usize, seed: u64) -> String {
    let mut out = String::with_capacity(rows * cols * 8);
    for c in 0..cols {
        if c > 0 {
            out.push(',');
        }
        out.push_str(&format!("c{c}"));
    }
    out.push('\n');
    let mut state = seed | 1;
    for _ in 0..rows {
        for c in 0..cols {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if c > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}", state % 1_000));
        }
        out.push('\n');
    }
    out
}

struct Level {
    clients: usize,
    p50: Duration,
    p99: Duration,
    served: u64,
    shed: u64,
    total: Duration,
}

fn run(addr: &str, clients: usize, rows: usize, cols: usize, iters: usize) -> Level {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, Duration::from_secs(60)).expect("connect");
                c.hello(&format!("tenant-{i}")).expect("hello");
                let csv = make_csv(rows, cols, (i as u64) * 7 + 11);
                c.put_frame("frame", &csv).expect("put");
                let mut latencies = Vec::with_capacity(iters);
                let mut served = 0u64;
                let mut shed = 0u64;
                for k in 0..iters {
                    // Every few cells the "notebook" mutates its frame (a
                    // dataframe op in Table 3's mix) and re-uploads it; the
                    // cells in between alternate whole-frame prints with
                    // column-intent prints. Re-upload cost is not counted
                    // in print latency, matching the paper's per-cell
                    // accounting.
                    if k > 0 && k % 4 == 0 {
                        let mutated = make_csv(rows, cols, (i as u64) * 7 + 11 + k as u64);
                        c.put_frame("frame", &mutated).expect("re-put");
                    }
                    // Rotate the intent so each print recomputes instead of
                    // replaying the memo — cold-ish work over a warm frame.
                    let intent = if k % 3 == 0 {
                        String::new()
                    } else {
                        format!("c{}", k % cols)
                    };
                    let t = Instant::now();
                    match c.print("frame", &intent, 0, 2).expect("print") {
                        PrintOutcome::Widget(w) => {
                            std::hint::black_box(w.table.len());
                            served += 1;
                        }
                        PrintOutcome::Busy { .. } => shed += 1,
                        PrintOutcome::Error(code, msg) => {
                            panic!("typed error mid-benchmark: {code:?} {msg}")
                        }
                    }
                    latencies.push(t.elapsed());
                }
                (latencies, served, shed)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut served = 0u64;
    let mut shed = 0u64;
    for h in handles {
        let (l, sv, sh) = h.join().expect("client panicked");
        latencies.extend(l);
        served += sv;
        shed += sh;
    }
    let total = started.elapsed();
    latencies.sort();
    Level {
        clients,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        served,
        shed,
        total,
    }
}

/// Append (or replace) the `"server"` section of BENCH_overload.json,
/// preserving the in-process overload runs written by `overload`.
fn merge_json(section: &str) {
    let path = "BENCH_overload.json";
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let head = existing
                .split(",\n  \"server\":")
                .next()
                .unwrap_or(&existing)
                .trim_end()
                .trim_end_matches('}')
                .trim_end()
                .to_string();
            format!("{head},\n  \"server\": {section}\n}}\n")
        }
        Err(_) => format!("{{\n  \"server\": {section}\n}}\n"),
    };
    std::fs::write(path, body).expect("write BENCH_overload.json");
}

/// Scrape the plaintext exposition listener and fail loudly unless the
/// per-tenant SLO catalogue is present and every sample line is
/// well-formed Prometheus text (`name{labels} value`).
fn validate_exposition(metrics_addr: &str) {
    let mut s = std::net::TcpStream::connect(metrics_addr).expect("connect metrics listener");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("scrape");
    assert!(raw.starts_with("HTTP/1.0 200 OK"), "scrape status: {raw}");
    let body = raw.split_once("\r\n\r\n").expect("header/body split").1;
    for needle in [
        "lux_tenant_requests{tenant=\"tenant-0\"}",
        "lux_tenant_sheds{tenant=\"tenant-0\"}",
        "lux_tenant_pass_latency_seconds{tenant=\"tenant-0\",quantile=\"0.5\"}",
        "lux_tenant_pass_latency_seconds{tenant=\"tenant-0\",quantile=\"0.99\"}",
        "lux_server_requests",
    ] {
        assert!(
            body.contains(needle),
            "exposition missing {needle}:\n{body}"
        );
    }
    let mut samples = 0usize;
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed exposition line (no sample value): {line:?}"));
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
            "malformed metric name in line: {line:?}"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample value in line: {line:?}"
        );
        samples += 1;
    }
    println!("\nmetrics exposition ok: {samples} well-formed samples from {metrics_addr}");
}

/// Print a fresh (memo-cold) frame under a 1 ms deadline so the pass
/// either misses its deadline or sheds — both flight-recorder anomalies —
/// then check the pinned entry: the trace must pass structural validation
/// and the spooled Chrome JSON dump must be a parseable event array.
fn force_deadline_miss_and_validate_flight(
    addr: &str,
    rows: usize,
    cols: usize,
    data_dir: &PathBuf,
) {
    let mut c = Client::connect(addr, Duration::from_secs(60)).expect("connect");
    c.hello("tenant-flight").expect("hello");
    c.put_frame("missy", &make_csv(rows * 2, cols, 0xf11e))
        .expect("put");
    match c.print("missy", "", 1, 2).expect("deadline print") {
        PrintOutcome::Widget(_) | PrintOutcome::Busy { .. } => {}
        PrintOutcome::Error(code, msg) => panic!("typed error on deadline print: {code:?} {msg}"),
    }
    let recorder = FlightRecorder::global();
    let pinned = recorder.pinned();
    let entry = pinned
        .iter()
        .find(|e| e.tenant == "tenant-flight")
        .unwrap_or_else(|| panic!("forced deadline-miss was not pinned; pinned = {pinned:?}"));
    let anomaly = entry.anomaly.clone().expect("pinned entry has an anomaly");
    entry
        .trace
        .validate(Duration::from_millis(5))
        .expect("pinned trace fails structural validation");
    let dump_path = entry
        .dump_path
        .clone()
        .unwrap_or_else(|| panic!("pinned entry has no spooled dump (spool {data_dir:?})"));
    let dump = std::fs::read_to_string(&dump_path).expect("read flight dump");
    assert!(
        dump.trim_start().starts_with('[')
            && dump.trim_end().ends_with(']')
            && dump.contains("\"ph\": \"X\""),
        "flight dump is not a Chrome event array: {dump_path:?}"
    );
    println!(
        "flight recorder ok: anomaly {anomaly:?} pinned, trace valid, dump {}",
        dump_path.display()
    );
}

fn main() {
    let (rows, cols, iters) = if full_scale() {
        (50_000usize, 16usize, 20usize)
    } else {
        (4_000, 8, 8)
    };
    let rows = env_scales("LUX_OVERLOAD_ROWS", &[rows])[0];
    let iters = env_scales("LUX_OVERLOAD_ITERS", &[iters])[0];
    let levels = env_scales("LUX_SERVER_LOAD_CLIENTS", &[1, 8, 32]);

    let data_dir: PathBuf =
        std::env::temp_dir().join(format!("lux_server_load_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: data_dir.clone(),
        read_timeout: Duration::from_secs(30),
        write_timeout: Duration::from_secs(30),
        drain_timeout: Duration::from_secs(5),
        max_conns: 256,
        metrics_addr: Some("127.0.0.1:0".to_string()),
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let metrics_addr = server
        .metrics_addr()
        .expect("metrics listener bound")
        .to_string();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().expect("run"));

    println!(
        "# Server load: concurrent clients vs round-trip print latency \
         ({rows} rows x {cols} cols, {iters} prints/client, addr {addr})\n"
    );

    let runs: Vec<Level> = levels
        .iter()
        .map(|&n| run(&addr, n, rows, cols, iters))
        .collect();

    // Observability validation, while the loaded server is still up: the
    // per-tenant SLO series must be scrapeable from the exposition
    // listener, and a forced deadline-miss must leave a pinned,
    // structurally valid flight-recorder dump behind.
    validate_exposition(&metrics_addr);
    force_deadline_miss_and_validate_flight(&addr, rows, cols, &data_dir);

    shutdown.store(true, Ordering::SeqCst);
    server_thread.join().expect("server thread");

    // Recovery benchmark: replay the journal the load run just wrote (one
    // frame per tenant plus the churn of every re-upload, compacted or
    // not) exactly as a restarted server would, and time it. Gated by
    // bench_compare.sh so recovery cost stays visible.
    let recover_started = Instant::now();
    let (recovered_reg, _notes) =
        lux_server::Registry::recover(&data_dir).expect("journal recovery");
    let recovery_ms = recover_started.elapsed().as_secs_f64() * 1e3;
    let recovered_frames = recovered_reg.frame_count();
    drop(recovered_reg);
    println!("\nrecovery: {recovered_frames} frame(s) replayed in {recovery_ms:.3} ms");
    let _ = std::fs::remove_dir_all(&data_dir);

    let mut rows_out: Vec<Vec<String>> = Vec::new();
    let mut section = String::from("{\n    \"runs\": [\n");
    for (k, r) in runs.iter().enumerate() {
        let shed_rate = r.shed as f64 / (r.served + r.shed).max(1) as f64;
        section.push_str(&format!(
            "      {{\"clients\": {}, \"server_p50_ms\": {}, \"server_p99_ms\": {}, \
             \"served\": {}, \"shed\": {}, \"shed_rate\": {:.3}, \"wall_ms\": {}}}",
            r.clients,
            ms(r.p50),
            ms(r.p99),
            r.served,
            r.shed,
            shed_rate,
            ms(r.total)
        ));
        section.push_str(if k + 1 < runs.len() { ",\n" } else { "\n" });
        rows_out.push(vec![
            format!("clients={}", r.clients),
            ms(r.p50),
            ms(r.p99),
            r.served.to_string(),
            r.shed.to_string(),
            format!("{:.1}%", shed_rate * 100.0),
            ms(r.total),
        ]);
    }
    section.push_str(&format!(
        "    ],\n    \"recovery_ms\": {recovery_ms:.3},\n    \
         \"recovered_frames\": {recovered_frames},\n    \
         \"rows\": {rows},\n    \"columns\": {cols},\n    \"iterations\": {iters}\n  }}"
    ));

    print_table(
        &["config", "p50", "p99", "served", "shed", "shed%", "wall"],
        &rows_out,
    );

    merge_json(&section);
    println!("\nmerged server section into BENCH_overload.json");
}
