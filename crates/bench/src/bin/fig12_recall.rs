//! Regenerates **Figure 12 (right)** (RQ3): Recall@15 of the sampled
//! (approximate) scoring pass against the exact ground-truth ranking, per
//! action, as the sample fraction grows — on the Communities-shaped dataset
//! (the paper uses 50k Communities).
//!
//! Expected shape: recall rises with the sample fraction, reaching ~90%
//! around a 10% sample for most actions, with the Filter action needing
//! larger samples because it stratifies the data into subsets ("since
//! Filter enumerates over data subsets, it requires more samples to ensure
//! enough data points per stratum").

use std::collections::HashMap;

use lux_bench::{env_scales, full_scale, print_table};
use lux_engine::{FrameMeta, LuxConfig, SemanticType};
use lux_intent::Clause;
use lux_recs::{intent_actions, metadata_actions, Action, ActionContext};
use lux_workloads::{action_recall, communities};

fn main() {
    let rows = if full_scale() {
        env_scales("LUX_RECALL_ROWS", &[50_000])[0]
    } else {
        env_scales("LUX_RECALL_ROWS", &[5_000])[0]
    };
    let k = 15;
    let fractions = [0.01, 0.02, 0.05, 0.10, 0.20, 0.40, 0.60, 1.0];
    let trials: u64 = if full_scale() { 5 } else { 3 };

    println!("# RQ3: recommendation accuracy under sampling (Recall@{k}, Communities {rows} rows)");

    // Rename one attribute as the analysis target and classify `state` as
    // nominal (it is a categorical code in the real dataset), so the
    // intent-based Filter action has a realistic subset space to enumerate.
    let df = communities(rows, 11)
        .rename(&[("attr_099", "target")])
        .expect("rename");
    let mut overrides = HashMap::new();
    overrides.insert("state".to_string(), SemanticType::Nominal);
    let meta = FrameMeta::compute(&df, &overrides);
    let config = LuxConfig {
        max_filter_expansions: 48,
        ..LuxConfig::default()
    };

    // Metadata actions run intent-free; intent actions search around an
    // intent on the target attribute, as a user exploring it would.
    let empty_intent: Vec<Clause> = vec![];
    let intent = vec![Clause::axis("target".to_string())];
    let intent_specs = lux_intent::compile(&intent, &meta, &Default::default()).unwrap_or_default();

    let metadata_actions: Vec<(&str, Box<dyn Action>)> = vec![
        ("Correlation", Box::new(metadata_actions::Correlation)),
        ("Distribution", Box::new(metadata_actions::Distribution)),
        ("Occurrence", Box::new(metadata_actions::Occurrence)),
    ];
    let intent_based: Vec<(&str, Box<dyn Action>)> = vec![
        ("Enhance", Box::new(intent_actions::Enhance)),
        ("Filter", Box::new(intent_actions::FilterAction)),
    ];

    let mut rows_out: Vec<Vec<String>> = Vec::new();
    let mut run_group =
        |actions: &[(&str, Box<dyn Action>)], intent: &[Clause], specs: &[lux_vis::VisSpec]| {
            for (name, action) in actions {
                let ctx = ActionContext {
                    df: &df,
                    meta: &meta,
                    intent,
                    intent_specs: specs,
                    config: &config,
                };
                if !action.applies(&ctx) {
                    eprintln!("  {name}: not applicable, skipped");
                    continue;
                }
                eprint!("  {name}:");
                let mut row = vec![name.to_string()];
                for &f in &fractions {
                    let mut total = 0.0;
                    for t in 0..trials {
                        total += action_recall(action.as_ref(), &ctx, f, k, 100 + t);
                    }
                    let mean = total / trials as f64;
                    eprint!(" {mean:.2}");
                    row.push(format!("{mean:.2}"));
                }
                eprintln!();
                rows_out.push(row);
            }
        };
    run_group(&metadata_actions, &empty_intent, &[]);
    run_group(&intent_based, &intent, &intent_specs);

    println!("\n## Figure 12 (right): Recall@{k} vs sample fraction");
    let mut header: Vec<String> = vec!["action".into()];
    header.extend(fractions.iter().map(|f| format!("{:.0}%", f * 100.0)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows_out);
    println!("\n(paper: ~10% sample suffices for >=90% recall on most actions; Filter needs more)");
}
