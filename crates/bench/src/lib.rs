//! Shared harness utilities for the experiment binaries.
//!
//! Each binary regenerates one table or figure from the paper's evaluation
//! (see DESIGN.md §3 for the index). Row scales default to CI-friendly sizes
//! and can be pushed to the paper's full scales via environment variables:
//!
//! - `LUX_ROWS_AIRBNB` — comma-separated row counts (paper: up to 10M)
//! - `LUX_ROWS_COMMUNITIES` — comma-separated row counts (paper: up to 100k)
//! - `LUX_WIDTHS` — comma-separated column counts for the RQ2 sweep
//! - `LUX_BENCH_FULL=1` — switch every default to the paper's full scale

/// Parse a comma-separated usize list from an env var, with a default.
pub fn env_scales(var: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(var) {
        Ok(s) => s
            .split(',')
            .filter_map(|p| p.trim().replace('_', "").parse().ok())
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// True when the harness should run at the paper's full scales.
pub fn full_scale() -> bool {
    std::env::var("LUX_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Row scales for the Airbnb sweeps (paper: 10k..10M).
pub fn airbnb_scales() -> Vec<usize> {
    if full_scale() {
        env_scales("LUX_ROWS_AIRBNB", &[10_000, 100_000, 1_000_000, 10_000_000])
    } else {
        env_scales("LUX_ROWS_AIRBNB", &[1_000, 10_000, 50_000])
    }
}

/// Row scales for the Communities sweeps (paper: 1k..100k).
pub fn communities_scales() -> Vec<usize> {
    if full_scale() {
        env_scales("LUX_ROWS_COMMUNITIES", &[1_000, 10_000, 100_000])
    } else {
        env_scales("LUX_ROWS_COMMUNITIES", &[500, 2_000, 8_000])
    }
}

/// Column widths for the RQ2 sweep (paper: up to several hundred columns
/// over a 100k-row frame).
pub fn width_scales() -> Vec<usize> {
    if full_scale() {
        env_scales("LUX_WIDTHS", &[10, 25, 50, 100, 200, 400])
    } else {
        env_scales("LUX_WIDTHS", &[10, 20, 40, 80])
    }
}

/// Rows for the RQ2 width sweep (paper: 100k).
pub fn width_rows() -> usize {
    if full_scale() {
        env_scales("LUX_WIDTH_ROWS", &[100_000])[0]
    } else {
        env_scales("LUX_WIDTH_ROWS", &[5_000])[0]
    }
}

/// Least-squares power-law fit `y = a * x^b` on log-log axes, returning
/// `(a, b)`. Used to reproduce the paper's "power=2.53 vs power=1.07"
/// comparison in Figure 12 (left). Requires positive data.
pub fn fit_power(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| **x > 0.0 && **y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return (0.0, 0.0);
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (0.0, 0.0);
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = ((sy - b * sx) / n).exp();
    (a, b)
}

/// Render an aligned CSV-ish table: header row then data rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_power_recovers_exponent() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(2.5)).collect();
        let (a, b) = fit_power(&xs, &ys);
        assert!((b - 2.5).abs() < 1e-9, "b={b}");
        assert!((a - 3.0).abs() < 1e-6, "a={a}");
    }

    #[test]
    fn fit_power_handles_degenerate() {
        assert_eq!(fit_power(&[1.0], &[1.0]), (0.0, 0.0));
        assert_eq!(fit_power(&[], &[]), (0.0, 0.0));
    }

    #[test]
    fn env_scales_parse() {
        std::env::set_var("LUX_TEST_SCALES_XYZ", "1_000, 2000,abc,3000");
        assert_eq!(
            env_scales("LUX_TEST_SCALES_XYZ", &[7]),
            vec![1000, 2000, 3000]
        );
        assert_eq!(env_scales("LUX_UNSET_VAR_XYZ", &[7]), vec![7]);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.0), "2.00s");
        assert_eq!(fmt_secs(0.002), "2.00ms");
        assert_eq!(fmt_secs(0.0000005), "0.5us");
    }
}
