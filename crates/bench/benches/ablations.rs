//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. freshness-based memoization vs recompute-always (WFLOW);
//! 2. cost-model-gated pruning vs no pruning (PRUNE);
//! 3. cached sample vs fresh sample per print;
//! 4. cheapest-first async scheduling vs sequential execution (ASYNC).

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lux_core::prelude::*;
use lux_engine::{CachedSample, CostModel, FrameMeta};
use lux_recs::{execute_action, metadata_actions::Correlation, ActionContext, ActionRegistry};
use lux_workloads::{communities, synthetic_wide};

/// WFLOW ablation: repeated prints with and without memoization.
fn ablation_wflow(c: &mut Criterion) {
    let df = synthetic_wide(20, 5_000, 1);
    let mut g = c.benchmark_group("ablation_wflow");
    g.sample_size(10);
    g.bench_function("memoized_reprint", |b| {
        let ldf = LuxDataFrame::with_config(df.clone(), Arc::new(LuxConfig::all_opt()));
        let _ = ldf.recommendations();
        b.iter(|| ldf.recommendations().len())
    });
    g.bench_function("recompute_reprint", |b| {
        let mut cfg = LuxConfig::all_opt();
        cfg.wflow = false;
        let cfg = Arc::new(cfg);
        let ldf = LuxDataFrame::with_config(df.clone(), Arc::clone(&cfg));
        b.iter(|| ldf.recommendations().len())
    });
    g.finish();
}

/// PRUNE ablation: the Correlation action on a wide frame, exact vs sampled
/// two-pass.
fn ablation_prune(c: &mut Criterion) {
    let df = communities(10_000, 2);
    let meta = FrameMeta::compute(&df, &HashMap::new());
    let model = CostModel::default();
    let mut g = c.benchmark_group("ablation_prune");
    g.sample_size(10);
    for (name, prune, sample_rows) in [("exact", false, 0usize), ("pruned_1k_sample", true, 1_000)]
    {
        g.bench_with_input(
            BenchmarkId::new("correlation", name),
            &prune,
            |b, &prune| {
                let config = LuxConfig {
                    prune,
                    ..LuxConfig::default()
                };
                let ctx = ActionContext {
                    df: &df,
                    meta: &meta,
                    intent: &[],
                    intent_specs: &[],
                    config: &config,
                };
                let sample = (sample_rows > 0).then(|| df.sample(sample_rows, 9));
                b.iter(|| {
                    execute_action(&Correlation, &ctx, sample.as_ref(), &model)
                        .unwrap()
                        .vislist
                        .len()
                })
            },
        );
    }
    g.finish();
}

/// Sample-cache ablation: cached sample handle vs re-sampling per use.
fn ablation_sample_cache(c: &mut Criterion) {
    let df = communities(50_000, 3);
    let mut g = c.benchmark_group("ablation_sample_cache");
    g.bench_function("cached", |b| {
        let cache = CachedSample::new(5_000, 7);
        let _ = cache.get(&df);
        b.iter(|| cache.get(&df).num_rows())
    });
    g.bench_function("fresh_each_time", |b| {
        b.iter(|| df.sample(5_000, 7).num_rows())
    });
    g.finish();
}

/// ASYNC ablation: full default action set, threaded vs sequential.
fn ablation_async(c: &mut Criterion) {
    let df = synthetic_wide(30, 5_000, 4);
    let meta = FrameMeta::compute(&df, &HashMap::new());
    let registry = ActionRegistry::with_defaults();
    let mut g = c.benchmark_group("ablation_async");
    g.sample_size(10);
    for (name, is_async) in [("sequential", false), ("async_cheapest_first", true)] {
        g.bench_function(name, |b| {
            let config = LuxConfig {
                r#async: is_async,
                prune: false,
                ..LuxConfig::default()
            };
            let ctx = ActionContext {
                df: &df,
                meta: &meta,
                intent: &[],
                intent_specs: &[],
                config: &config,
            };
            b.iter(|| lux_recs::run_actions(&registry, &ctx, None, None).len())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_wflow,
    ablation_prune,
    ablation_sample_cache,
    ablation_async,
    ablation_backend
);
criterion_main!(benches);

/// Backend ablation: native kernels vs SQL translation for the Table-2
/// processing shapes.
fn ablation_backend(c: &mut Criterion) {
    use lux_vis::{process, Backend, Channel, Encoding, Mark, ProcessOptions, VisSpec};
    let df = lux_workloads::airbnb(20_000, 5);
    let q = SemanticType::Quantitative;
    let n = SemanticType::Nominal;
    let cases = vec![
        (
            "bar_mean",
            VisSpec::new(
                Mark::Bar,
                vec![
                    Encoding::new("neighbourhood_group", n, Channel::X),
                    Encoding::new("price", q, Channel::Y).with_aggregation(Agg::Mean),
                ],
                vec![],
            ),
        ),
        (
            "histogram",
            VisSpec::new(
                Mark::Histogram,
                vec![
                    Encoding::new("price", q, Channel::X).with_bin(10),
                    Encoding::synthetic_count(Channel::Y),
                ],
                vec![],
            ),
        ),
    ];
    let mut g = c.benchmark_group("ablation_backend");
    for (name, spec) in &cases {
        for (backend_name, backend) in [("native", Backend::Native), ("sql", Backend::Sql)] {
            let opts = ProcessOptions {
                backend,
                ..ProcessOptions::default()
            };
            g.bench_function(format!("{name}/{backend_name}"), |b| {
                b.iter(|| process(spec, &df, &opts).unwrap().num_rows())
            });
        }
    }
    g.finish();
}
