//! Criterion microbenchmarks for the core kernels: metadata computation,
//! intent compilation, visualization processing per Table 2 class, scoring,
//! and a full print under the default (all-opt) configuration.

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lux_core::prelude::*;
use lux_engine::FrameMeta;
use lux_intent::{compile, CompileOptions};
use lux_vis::{process, ProcessOptions};
use lux_workloads::{airbnb, synthetic_wide};

fn bench_metadata(c: &mut Criterion) {
    let mut g = c.benchmark_group("metadata");
    for rows in [1_000usize, 10_000] {
        let df = airbnb(rows, 1);
        g.bench_with_input(BenchmarkId::new("compute", rows), &df, |b, df| {
            b.iter(|| FrameMeta::compute(df, &HashMap::new()))
        });
    }
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let df = synthetic_wide(40, 100, 2);
    let meta = FrameMeta::compute(&df, &HashMap::new());
    let opts = CompileOptions::default();
    let mut g = c.benchmark_group("intent_compile");
    g.bench_function("single_axis", |b| {
        let intent = vec![Clause::axis("int_0")];
        b.iter(|| compile(&intent, &meta, &opts).unwrap())
    });
    g.bench_function("wildcard_pair", |b| {
        let intent = vec![
            Clause::wildcard_typed(SemanticType::Quantitative),
            Clause::wildcard_typed(SemanticType::Quantitative),
        ];
        b.iter(|| compile(&intent, &meta, &opts).unwrap())
    });
    g.finish();
}

fn bench_processing(c: &mut Criterion) {
    let df = airbnb(50_000, 3);
    let meta = FrameMeta::compute(&df, &HashMap::new());
    let popts = ProcessOptions::default();
    let copts = CompileOptions::default();
    let mut g = c.benchmark_group("vis_processing");
    let cases = [
        ("scatter", vec!["price", "number_of_reviews"]),
        ("bar_groupagg", vec!["price", "room_type"]),
        ("histogram", vec!["price"]),
    ];
    for (name, cols) in cases {
        let intent: Vec<Clause> = cols.iter().map(|c| Clause::axis(c.to_string())).collect();
        let specs = compile(&intent, &meta, &copts).unwrap();
        let spec = specs.into_iter().next().unwrap();
        g.bench_function(name, |b| b.iter(|| process(&spec, &df, &popts).unwrap()));
    }
    g.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let df = airbnb(50_000, 4);
    let x = df.data_column("price");
    let y = df.data_column("number_of_reviews");
    c.bench_function("pearson_50k", |b| {
        b.iter(|| lux_recs::score::pearson(&x, &y))
    });
}

// helper to pull an owned column out of a frame for the scoring bench
trait DataColumn {
    fn data_column(&self, name: &str) -> Column;
}

impl DataColumn for DataFrame {
    fn data_column(&self, name: &str) -> Column {
        self.column(name).unwrap().clone()
    }
}

fn bench_full_print(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_print");
    g.sample_size(10);
    for rows in [5_000usize, 20_000] {
        let df = airbnb(rows, 5);
        g.bench_with_input(BenchmarkId::new("all_opt_cold", rows), &df, |b, df| {
            b.iter(|| {
                let ldf = LuxDataFrame::with_config(df.clone(), Arc::new(LuxConfig::all_opt()));
                ldf.recommendations().len()
            })
        });
        g.bench_with_input(BenchmarkId::new("all_opt_memoized", rows), &df, |b, df| {
            let ldf = LuxDataFrame::with_config(df.clone(), Arc::new(LuxConfig::all_opt()));
            let _ = ldf.recommendations();
            b.iter(|| ldf.recommendations().len())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_metadata,
    bench_compile,
    bench_processing,
    bench_scoring,
    bench_full_print
);
criterion_main!(benches);
