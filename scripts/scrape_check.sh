#!/usr/bin/env bash
# Mid-load metrics-exposition check (DESIGN.md §12): boot a real
# `lux-shell serve` process with the plaintext metrics listener enabled,
# drive client load against it, scrape the listener while prints are in
# flight, and fail on malformed exposition lines or missing catalogue
# metrics. Zero dependencies beyond bash: the scrape uses /dev/tcp.
#
# Usage: scripts/scrape_check.sh [clients] [prints-per-client]
set -euo pipefail
cd "$(dirname "$0")/.."

CLIENTS="${1:-4}"
PRINTS="${2:-6}"

cargo build --release -q -p lux-cli --bin lux-shell
BIN=target/release/lux-shell

work=$(mktemp -d)
trap 'kill "${SERVE_PID:-0}" 2>/dev/null || true; rm -rf "$work"' EXIT

# A small deterministic CSV for the load clients.
{
    echo "mpg,hp,weight,origin"
    for i in $(seq 1 200); do
        echo "$((10 + i % 30)).5,$((50 + i * 7 % 200)),$((1500 + i * 13 % 3000)),origin$((i % 3))"
    done
} >"$work/cars.csv"

LUX_SERVER_DATA_DIR="$work/data" LUX_METRICS_ADDR=127.0.0.1:0 \
    "$BIN" serve 127.0.0.1:0 >"$work/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
    grep -q 'lux-serve: ready' "$work/serve.log" 2>/dev/null && break
    sleep 0.1
done
grep -q 'lux-serve: ready' "$work/serve.log" || {
    echo "error: server never became ready"; cat "$work/serve.log"; exit 1
}
ADDR=$(sed -n 's/^lux-serve: listening on //p' "$work/serve.log" | head -1)
MADDR=$(sed -n 's/^lux-serve: metrics on //p' "$work/serve.log" | head -1)
[ -n "$MADDR" ] || { echo "error: no metrics listener marker"; cat "$work/serve.log"; exit 1; }
echo "== server on $ADDR, metrics on $MADDR"

# Client load: N background clients, each uploading once and printing with
# rotating intents and a client-supplied request id.
CLIENT_PIDS=()
for c in $(seq 1 "$CLIENTS"); do
    (
        "$BIN" client "$ADDR" put "tenant-$c" cars "$work/cars.csv" >/dev/null
        for k in $(seq 1 "$PRINTS"); do
            "$BIN" client "$ADDR" print "tenant-$c" cars "mpg,hp" 0 "ci-$c-$k" >/dev/null || true
        done
    ) &
    CLIENT_PIDS+=("$!")
done

# Scrape mid-load: wait for the first tenant series to appear (load is in
# flight), then take the scrape that gets validated.
scrape() {
    local host="${MADDR%:*}" port="${MADDR##*:}"
    exec 3<>"/dev/tcp/$host/$port"
    printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
    cat <&3
    exec 3<&- 3>&-
}
for _ in $(seq 1 100); do
    if scrape | grep -q 'lux_tenant_requests{tenant="tenant-'; then break; fi
    sleep 0.1
done
scrape >"$work/scrape.txt"
for pid in "${CLIENT_PIDS[@]}"; do wait "$pid" 2>/dev/null || true; done

# 1. HTTP envelope.
head -1 "$work/scrape.txt" | grep -q '200 OK' || {
    echo "error: scrape did not answer 200 OK"; head -5 "$work/scrape.txt"; exit 1
}
grep -q 'text/plain; version=0.0.4' "$work/scrape.txt" || {
    echo "error: wrong exposition content type"; head -5 "$work/scrape.txt"; exit 1
}
# Body = everything after the blank header line.
sed -e '1,/^\r\{0,1\}$/d' "$work/scrape.txt" >"$work/body.txt"

# 2. Every non-comment line must be `name{labels} value` with a numeric
#    value — malformed exposition fails the job.
awk '
    /^$/ || /^#/ { next }
    {
        if ($0 !~ /^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? -?[0-9.eE+]+$/) {
            print "malformed exposition line: " $0
            bad = 1
        }
        n += 1
    }
    END {
        if (n == 0) { print "empty exposition body"; exit 1 }
        print n " samples checked"
        exit bad
    }
' "$work/body.txt"

# 3. Catalogue: the server, per-tenant SLO, journal, and flight-recorder
#    series must all be present in a mid-load scrape.
missing=0
for needle in \
    'lux_server_requests' \
    'lux_server_journal_appends' \
    'lux_prints' \
    'lux_tenant_requests{tenant="tenant-' \
    'lux_tenant_sheds{tenant="tenant-' \
    'lux_tenant_pass_latency_seconds{tenant="tenant-1",quantile="0.5"}' \
    'lux_tenant_pass_latency_seconds{tenant="tenant-1",quantile="0.99"}' \
    'lux_tenant_queue_wait_seconds_count{tenant="tenant-' \
    'lux_flight_recorded'; do
    if ! grep -qF "$needle" "$work/body.txt"; then
        echo "error: catalogue metric missing from scrape: $needle"
        missing=1
    fi
done
[ "$missing" -eq 0 ] || { echo "-- scrape body --"; cat "$work/body.txt"; exit 1; }

kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
echo "scrape check passed"
