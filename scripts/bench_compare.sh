#!/usr/bin/env bash
# Parallel print-path regression gate: re-runs the `print_path` benchmark
# and compares each thread count's median total against the committed
# BENCH_parallel.json baseline. Fails if any configuration regresses by
# more than the tolerance (benchmark noise on shared runners is real, so
# the bar is deliberately loose — catch structural regressions, not jitter).
#
# Usage: scripts/bench_compare.sh [tolerance_pct]   (default 15)
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${1:-15}"
BASELINE=BENCH_parallel.json

if [ ! -f "$BASELINE" ]; then
    echo "error: no committed $BASELINE baseline to compare against"
    exit 1
fi

# Pull "threads total_ms" pairs out of the runs array. The file is written
# by crates/bench/src/bin/print_path.rs with one run object per entry, so a
# line-oriented scrape is enough — no jq dependency.
extract() {
    grep -o '"threads": [0-9]*' "$1" | awk '{print $2}' >/tmp/bench_threads.$$
    grep -o '"total_ms": [0-9.]*' "$1" | awk '{print $2}' >/tmp/bench_totals.$$
    paste /tmp/bench_threads.$$ /tmp/bench_totals.$$
    rm -f /tmp/bench_threads.$$ /tmp/bench_totals.$$
}

baseline_pairs=$(extract "$BASELINE")

echo "== building and running print_path"
cargo build --release -p lux-bench --bin print_path --quiet
work=$(mktemp -d)
(cd "$work" && "$OLDPWD/target/release/print_path")
current_pairs=$(extract "$work/BENCH_parallel.json")
rm -rf "$work"

echo
echo "== comparing against committed $BASELINE (tolerance ${TOLERANCE}%)"
fail=0
while read -r threads base_ms; do
    cur_ms=$(echo "$current_pairs" | awk -v t="$threads" '$1 == t {print $2}')
    if [ -z "$cur_ms" ]; then
        echo "warn: threads=$threads missing from current run, skipping"
        continue
    fi
    verdict=$(awk -v b="$base_ms" -v c="$cur_ms" -v tol="$TOLERANCE" 'BEGIN {
        delta = (c - b) / b * 100
        printf "%+.1f%% ", delta
        print (delta > tol) ? "REGRESSION" : "ok"
    }')
    echo "threads=$threads: baseline ${base_ms}ms -> current ${cur_ms}ms ($verdict)"
    case "$verdict" in *REGRESSION*) fail=1 ;; esac
done <<<"$baseline_pairs"

if [ "$fail" -ne 0 ]; then
    echo "error: print-path total regressed more than ${TOLERANCE}% vs $BASELINE"
    exit 1
fi

# Overload gate: the admission layer must stay invisible to an idle engine,
# so the single-session p50 is held to the same tolerance. Higher session
# counts are reported but not gated — contention on shared runners swings
# them far beyond any useful threshold.
OVERLOAD_BASELINE=BENCH_overload.json
if [ -f "$OVERLOAD_BASELINE" ]; then
    extract_overload() {
        grep -o '"sessions": [0-9]*' "$1" | awk '{print $2}' >/tmp/bench_sessions.$$
        grep -o '"p50_ms": [0-9.]*' "$1" | awk '{print $2}' >/tmp/bench_p50s.$$
        paste /tmp/bench_sessions.$$ /tmp/bench_p50s.$$
        rm -f /tmp/bench_sessions.$$ /tmp/bench_p50s.$$
    }
    echo
    echo "== building and running overload"
    cargo build --release -p lux-bench --bin overload --quiet
    work=$(mktemp -d)
    (cd "$work" && "$OLDPWD/target/release/overload")
    current_overload=$(extract_overload "$work/BENCH_overload.json")
    rm -rf "$work"
    echo
    echo "== comparing single-session p50 against committed $OVERLOAD_BASELINE (tolerance ${TOLERANCE}%)"
    base_p50=$(extract_overload "$OVERLOAD_BASELINE" | awk '$1 == 1 {print $2}')
    cur_p50=$(echo "$current_overload" | awk '$1 == 1 {print $2}')
    if [ -n "$base_p50" ] && [ -n "$cur_p50" ]; then
        verdict=$(awk -v b="$base_p50" -v c="$cur_p50" -v tol="$TOLERANCE" 'BEGIN {
            delta = (c - b) / b * 100
            printf "%+.1f%% ", delta
            print (delta > tol) ? "REGRESSION" : "ok"
        }')
        echo "sessions=1: baseline ${base_p50}ms -> current ${cur_p50}ms ($verdict)"
        case "$verdict" in *REGRESSION*)
            echo "error: single-session p50 regressed more than ${TOLERANCE}% vs $OVERLOAD_BASELINE"
            exit 1
        ;; esac
    else
        echo "warn: sessions=1 entry missing, skipping overload gate"
    fi
else
    echo "note: no $OVERLOAD_BASELINE baseline, skipping overload gate"
fi

# Server gate: the wire protocol + registry must stay thin relative to an
# in-process print, so the single-client round-trip p50 is held to the same
# tolerance. Because server_load now runs with the full observability
# surface on (request-context tagging, per-tenant metrics, flight
# recorder, metrics listener), this gate also bounds that surface's
# steady-state overhead against the committed pre-observability baseline
# (<5% target; the tolerance absorbs runner noise on top). Higher client
# counts are reported but not gated (contention noise). Skipped when the
# committed baseline predates the server section.
if [ -f "$OVERLOAD_BASELINE" ] && grep -q '"server_p50_ms"' "$OVERLOAD_BASELINE"; then
    base_sp50=$(grep -o '"server_p50_ms": [0-9.]*' "$OVERLOAD_BASELINE" | head -1 | awk '{print $2}')
    echo
    echo "== building and running server_load (LUX_JOURNAL_FSYNC=always)"
    # Strictest durability on: every journal append fsyncs. Puts are not
    # counted in print latency, so holding the print p50 to the committed
    # (pre-fsync-always) baseline proves acked-put durability stays off
    # the print path entirely.
    cargo build --release -p lux-bench --bin server_load --quiet
    work=$(mktemp -d)
    (cd "$work" && LUX_JOURNAL_FSYNC=always "$OLDPWD/target/release/server_load")
    cur_sp50=$(grep -o '"server_p50_ms": [0-9.]*' "$work/BENCH_overload.json" | head -1 | awk '{print $2}')
    cur_recovery=$(grep -o '"recovery_ms": [0-9.]*' "$work/BENCH_overload.json" | head -1 | awk '{print $2}')
    rm -rf "$work"
    echo
    echo "== comparing single-client server p50 against committed $OVERLOAD_BASELINE (tolerance ${TOLERANCE}%)"
    if [ -n "$base_sp50" ] && [ -n "$cur_sp50" ]; then
        verdict=$(awk -v b="$base_sp50" -v c="$cur_sp50" -v tol="$TOLERANCE" 'BEGIN {
            delta = (c - b) / b * 100
            printf "%+.1f%% ", delta
            print (delta > tol) ? "REGRESSION" : "ok"
        }')
        echo "clients=1: baseline ${base_sp50}ms -> current ${cur_sp50}ms ($verdict)"
        case "$verdict" in *REGRESSION*)
            echo "error: single-client server p50 regressed more than ${TOLERANCE}% vs $OVERLOAD_BASELINE"
            exit 1
        ;; esac
    else
        echo "warn: clients=1 server entry missing, skipping server gate"
    fi
    # Recovery gate: journal replay after the load run must stay bounded.
    # Recovery re-parses every spooled CSV, so on a loaded runner the
    # absolute number jitters by tens of ms; the relative tolerance gets a
    # 250 ms absolute slack on top. The regression this is built to catch
    # — losing snapshot/compaction and replaying the full journal — costs
    # seconds, far outside the slack. Skipped when the committed baseline
    # predates the recovery benchmark.
    base_recovery=$(grep -o '"recovery_ms": [0-9.]*' "$OVERLOAD_BASELINE" | head -1 | awk '{print $2}')
    if [ -n "$base_recovery" ] && [ -n "${cur_recovery:-}" ]; then
        verdict=$(awk -v b="$base_recovery" -v c="$cur_recovery" -v tol="$TOLERANCE" 'BEGIN {
            allowed = b * (1 + tol / 100) + 250
            printf "%+.1fms ", c - b
            print (c > allowed) ? "REGRESSION" : "ok"
        }')
        echo "recovery: baseline ${base_recovery}ms -> current ${cur_recovery}ms ($verdict)"
        case "$verdict" in *REGRESSION*)
            echo "error: journal recovery regressed more than ${TOLERANCE}%+250ms vs $OVERLOAD_BASELINE"
            exit 1
        ;; esac
    else
        echo "note: no recovery_ms baseline, skipping recovery gate"
    fi
else
    echo "note: no server section in $OVERLOAD_BASELINE, skipping server gate"
fi

echo "bench comparison passed"
