#!/usr/bin/env bash
# Parallel print-path regression gate: re-runs the `print_path` benchmark
# and compares each thread count's median total against the committed
# BENCH_parallel.json baseline. Fails if any configuration regresses by
# more than the tolerance (benchmark noise on shared runners is real, so
# the bar is deliberately loose — catch structural regressions, not jitter).
#
# Usage: scripts/bench_compare.sh [tolerance_pct]   (default 15)
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${1:-15}"
BASELINE=BENCH_parallel.json

if [ ! -f "$BASELINE" ]; then
    echo "error: no committed $BASELINE baseline to compare against"
    exit 1
fi

# Pull "threads total_ms" pairs out of the runs array. The file is written
# by crates/bench/src/bin/print_path.rs with one run object per entry, so a
# line-oriented scrape is enough — no jq dependency.
extract() {
    grep -o '"threads": [0-9]*' "$1" | awk '{print $2}' >/tmp/bench_threads.$$
    grep -o '"total_ms": [0-9.]*' "$1" | awk '{print $2}' >/tmp/bench_totals.$$
    paste /tmp/bench_threads.$$ /tmp/bench_totals.$$
    rm -f /tmp/bench_threads.$$ /tmp/bench_totals.$$
}

baseline_pairs=$(extract "$BASELINE")

echo "== building and running print_path"
cargo build --release -p lux-bench --bin print_path --quiet
work=$(mktemp -d)
(cd "$work" && "$OLDPWD/target/release/print_path")
current_pairs=$(extract "$work/BENCH_parallel.json")
rm -rf "$work"

echo
echo "== comparing against committed $BASELINE (tolerance ${TOLERANCE}%)"
fail=0
while read -r threads base_ms; do
    cur_ms=$(echo "$current_pairs" | awk -v t="$threads" '$1 == t {print $2}')
    if [ -z "$cur_ms" ]; then
        echo "warn: threads=$threads missing from current run, skipping"
        continue
    fi
    verdict=$(awk -v b="$base_ms" -v c="$cur_ms" -v tol="$TOLERANCE" 'BEGIN {
        delta = (c - b) / b * 100
        printf "%+.1f%% ", delta
        print (delta > tol) ? "REGRESSION" : "ok"
    }')
    echo "threads=$threads: baseline ${base_ms}ms -> current ${cur_ms}ms ($verdict)"
    case "$verdict" in *REGRESSION*) fail=1 ;; esac
done <<<"$baseline_pairs"

if [ "$fail" -ne 0 ]; then
    echo "error: print-path total regressed more than ${TOLERANCE}% vs $BASELINE"
    exit 1
fi
echo "bench comparison passed"
