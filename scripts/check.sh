#!/usr/bin/env bash
# Repo hygiene gate: formatting, build, tests, and a grep lint that pins the
# number of `unwrap()` calls in the engine/recs/core crates to a recorded
# baseline — new code in the print path must handle errors (or use
# `expect` with a message), never add bare unwraps. Lower the baseline when
# you remove some.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --workspace"
cargo build --workspace --quiet

echo "== cargo test --workspace"
cargo test --workspace --quiet

echo "== metric catalogue drift (trace::names vs scripts/metric_catalogue.txt)"
# Every metric name constant in lux_engine::trace::names must be listed in
# the committed catalogue (and vice versa) — a new metric cannot ship
# without updating the catalogue, which is what DESIGN.md §12 and the CI
# scrape check (scripts/scrape_check.sh) key off. Regenerate with:
#   awk '/pub mod names/,/^}/' crates/engine/src/trace.rs \
#     | grep -o '= "lux\.[a-z0-9._]*"' | sed 's/= "//; s/"//' | sort -u
current=$(awk '/pub mod names/,/^}/' crates/engine/src/trace.rs \
    | grep -o '= "lux\.[a-z0-9._]*"' | sed 's/= "//; s/"//' | sort -u)
if ! diff -u scripts/metric_catalogue.txt <(printf '%s\n' "$current"); then
    echo "error: metric catalogue drift — update scripts/metric_catalogue.txt (and DESIGN.md §12) to match trace::names"
    exit 1
fi
echo "ok: $(wc -l < scripts/metric_catalogue.txt | tr -d ' ') catalogued metric names in sync"

echo "== failpoint catalogue drift (failpoint::names vs scripts/failpoint_catalogue.txt)"
# Same contract as the metric catalogue: every failpoint site constant in
# lux_engine::failpoint::names must be listed in the committed catalogue
# (and vice versa) — a new injection site cannot ship without the chaos /
# torture suites and DESIGN.md §10 knowing about it. Regenerate with:
#   awk '/pub mod names/,/^}/' crates/engine/src/failpoint.rs \
#     | grep -o '= "[a-z0-9._]*"' | sed 's/= "//; s/"//' | sort -u
current=$(awk '/pub mod names/,/^}/' crates/engine/src/failpoint.rs \
    | grep -o '= "[a-z0-9._]*"' | sed 's/= "//; s/"//' | sort -u)
if ! diff -u scripts/failpoint_catalogue.txt <(printf '%s\n' "$current"); then
    echo "error: failpoint catalogue drift — update scripts/failpoint_catalogue.txt (and DESIGN.md) to match failpoint::names"
    exit 1
fi
echo "ok: $(wc -l < scripts/failpoint_catalogue.txt | tr -d ' ') catalogued failpoint sites in sync"

echo "== unwrap() lint (crates/{engine,recs,core}/src)"
BASELINE=147
count=$(grep -rho 'unwrap()' crates/engine/src crates/recs/src crates/core/src | wc -l | tr -d ' ')
if [ "$count" -gt "$BASELINE" ]; then
    echo "error: $count unwrap() calls (baseline $BASELINE) — new unwrap() in the print path is denied"
    exit 1
fi
if [ "$count" -lt "$BASELINE" ]; then
    echo "note: $count unwrap() calls, below baseline $BASELINE — consider lowering BASELINE in scripts/check.sh"
fi
echo "ok: $count unwrap() calls (baseline $BASELINE)"

echo "all checks passed"
