#!/usr/bin/env bash
# Repo hygiene gate: formatting, build, tests, and a grep lint that pins the
# number of `unwrap()` calls in the engine/recs/core crates to a recorded
# baseline — new code in the print path must handle errors (or use
# `expect` with a message), never add bare unwraps. Lower the baseline when
# you remove some.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --workspace"
cargo build --workspace --quiet

echo "== cargo test --workspace"
cargo test --workspace --quiet

echo "== unwrap() lint (crates/{engine,recs,core}/src)"
BASELINE=147
count=$(grep -rho 'unwrap()' crates/engine/src crates/recs/src crates/core/src | wc -l | tr -d ' ')
if [ "$count" -gt "$BASELINE" ]; then
    echo "error: $count unwrap() calls (baseline $BASELINE) — new unwrap() in the print path is denied"
    exit 1
fi
if [ "$count" -lt "$BASELINE" ]; then
    echo "note: $count unwrap() calls, below baseline $BASELINE — consider lowering BASELINE in scripts/check.sh"
fi
echo "ok: $count unwrap() calls (baseline $BASELINE)"

echo "all checks passed"
