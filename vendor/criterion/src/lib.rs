//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple wall-clock measurement loop instead of criterion's
//! statistics engine. Each benchmark warms up briefly, then runs batches
//! until a time budget is spent, and prints min / mean iteration time.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    budget: Duration,
}

impl Bencher<'_> {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: one untimed call (also primes caches/lazy statics).
        std_black_box(f());
        let started = Instant::now();
        while started.elapsed() < self.budget {
            let t = Instant::now();
            std_black_box(f());
            self.samples.push(t.elapsed());
            if self.samples.len() >= 1000 {
                break;
            }
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            budget: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let budget = self.budget;
        run_one(&id.into_label(), budget, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    budget: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Criterion's `sample_size` maps onto the time budget here: smaller
    /// sample counts mean the caller expects slow iterations, so give the
    /// loop proportionally less wall time.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.budget = Some(Duration::from_millis((n as u64 * 30).clamp(100, 2_000)));
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = Some(d);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.budget.unwrap_or(self.parent.budget), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Throughput annotations (accepted, ignored).
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(label: &str, budget: Duration, mut f: F) {
    let mut samples: Vec<Duration> = Vec::new();
    let mut b = Bencher {
        samples: &mut samples,
        budget,
    };
    f(&mut b);
    if samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let min = samples.iter().min().expect("nonempty");
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{label:<50} min {:>12?}  mean {:>12?}  ({} samples)",
        min,
        mean,
        samples.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_samples() {
        let mut c = Criterion {
            budget: Duration::from_millis(20),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut ran = 0usize;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 5), &5usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(ran > 0);
    }
}
