//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest's API that the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, `collection::vec`, `option::of`, a
//! regex-subset string strategy for `&str` patterns, `Just`, `any::<bool>()`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its inputs via the panic
//!   message (assert formatting) but is not minimized.
//! - **Deterministic seeding.** Each test's RNG is seeded from a hash of the
//!   test name, so failures reproduce exactly across runs.
//! - The string strategy supports the regex subset actually used in this
//!   repo: literals, `.`, character classes (`[a-z0-9_]` with ranges), and
//!   `{m,n}` / `{n}` quantifiers.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Deterministic RNG (SplitMix64)
// ---------------------------------------------------------------------

/// The per-test random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A generator of random values (no shrinking in this stand-in).
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Erase the concrete type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: std::rc::Rc::new(move |rng| self.new_value(rng)),
        }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// `prop_filter` adapter (rejection sampling with a retry cap).
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter: gave up generating a value satisfying {:?}",
            self.reason
        );
    }
}

/// A type-erased strategy (`Rc` so unions can be cloned cheaply).
pub struct BoxedStrategy<T> {
    gen: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: std::rc::Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Weighted choice among boxed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.below(total.max(1) as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        self.arms[0].1.new_value(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---------------------------------------------------------------------
// String strategy from a regex subset
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Dot,
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(ch) = chars.next() {
        let atom = match ch {
            '.' => Atom::Dot,
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("checked");
                            let hi = chars.next().expect("checked peek");
                            ranges.push((lo, hi));
                        }
                        Some(c) => {
                            if let Some(p) = prev.replace(c) {
                                ranges.push((p, p));
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    ranges.push((p, p));
                }
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
            other => Atom::Literal(other),
        };
        // optional {m,n} / {n} quantifier
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n: usize = spec.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// `&str` regex patterns act as `String` strategies, as in real proptest.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        const PRINTABLE: (char, char) = (' ', '~');
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..count {
                let c = match &piece.atom {
                    Atom::Literal(c) => *c,
                    Atom::Dot => (PRINTABLE.0 as u32
                        + rng.below((PRINTABLE.1 as u64) - (PRINTABLE.0 as u64) + 1) as u32)
                        .try_into()
                        .expect("printable ascii"),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                        (lo as u32 + rng.below(hi as u64 - lo as u64 + 1) as u32)
                            .try_into()
                            .expect("class char")
                    }
                };
                out.push(c);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Collections & option
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes may be a fixed `usize` or a `Range<usize>`.
    pub trait IntoSize {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    pub fn vec<S: Strategy, L: IntoSize>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSize> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `option::of(s)` — `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Config & macros
// ---------------------------------------------------------------------

/// Runner configuration (`cases` is the only knob this stand-in honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = "[a-z]{3,8}".new_value(&mut rng);
            assert!((3..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let t = "[A-Za-z][A-Za-z0-9_]{0,12}".new_value(&mut rng);
            assert!(t.chars().next().unwrap().is_ascii_alphabetic());
            assert!(t.len() <= 13);

            let free = ".{0,40}".new_value(&mut rng);
            assert!(free.len() <= 40);
        }
    }

    #[test]
    fn union_honors_weights_roughly() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = TestRng::deterministic("weights");
        let trues = (0..1000).filter(|_| s.new_value(&mut rng)).count();
        assert!(trues > 800, "expected ~900 trues, got {trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_runs(x in 0usize..10, v in prop::collection::vec(0i64..5, 1..4)) {
            prop_assert!(x < 10);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
        }

        #[test]
        fn flat_map_threads_values(pair in (1usize..5).prop_flat_map(|n| prop::collection::vec(Just(n), n))) {
            prop_assert_eq!(pair.len(), pair[0]);
        }
    }
}
