//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses: `StdRng`, `SeedableRng::
//! seed_from_u64`, and `Rng::{gen_range, gen_bool, gen}` over integer and
//! float ranges. The generator is xoshiro256** seeded via SplitMix64 — the
//! same construction rand's `SmallRng` family uses — so streams are
//! high-quality and fully deterministic for a given seed, which is all the
//! workload generators and benches require. Not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range type (subset of `rand::distributions`).
/// Implemented once, generically over [`SampleUniform`] element types —
/// mirroring real rand's blanket impl so integer-literal ranges unify with
/// the surrounding expression's type instead of falling back to `i32`.
pub trait SampleRange<T> {
    fn sample_from(&self, rng: &mut dyn RngCore) -> T;
}

/// Element types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_between(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(&self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(&self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// The raw entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// `gen::<f64>()` — uniform in [0, 1). Only the float instantiation is
    /// provided; that is the only one used in this workspace.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_entropy(self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

/// Marker for `Rng::gen` output types.
pub trait Standard {
    fn from_entropy(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_entropy(bits: u64) -> f64 {
        unit_f64(bits)
    }
}

impl Standard for bool {
    fn from_entropy(bits: u64) -> bool {
        bits & 1 == 1
    }
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 top bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: $t, hi: $t, inclusive: bool, rng: &mut dyn RngCore) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: $t, hi: $t, _inclusive: bool, rng: &mut dyn RngCore) -> $t {
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64 (deterministic, fast, and
    /// statistically strong for simulation workloads).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A loosely-seeded generator for callers that don't need determinism.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let inc = rng.gen_range(1i64..=3);
            assert!((1..=3).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
